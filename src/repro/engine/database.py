"""The `Database` facade: the in-memory RDBMS the Hippo frontend talks to.

This plays the role PostgreSQL played in the original system: it executes
SQL (DDL, DML and queries), answers point membership lookups, and keeps
execution statistics so the Hippo layer's optimizations are observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

from repro.engine.catalog import Catalog
from repro.engine.changelog import ChangeLog
from repro.engine.feed import (
    RECORD_CHANGE,
    RECORD_CREATE_TABLE,
    RECORD_DROP_TABLE,
    ChangeFeed,
    FeedConsumer,
    FeedRecord,
    deserialize_schema,
)
from repro.engine.expressions import ExpressionCompiler, Scope
from repro.engine.plan import Filter, Scan, run_plan
from repro.engine.planner import PlanCache, PlannedQuery, Planner
from repro.engine.schema import Column, TableSchema
from repro.engine.snapshot import restore_database, snapshot_database
from repro.engine.stats import ExecutionStats
from repro.engine.storage import Table
from repro.engine.types import SQLType, SQLValue, type_from_name
from repro.errors import (
    BackendError,
    CatalogError,
    ExecutionError,
    FeedRetentionError,
)
from repro.sql import ast
from repro.sql.parser import parse_script, parse_statement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backends.base import Backend

#: The consumer-group name under which a durable database's writer
#: registers itself as a retention participant.  Its latest checkpoint
#: (snapshot of catalog + tables bound to a committed cut) is the
#: writer's *recovery point*: retention never reclaims past it, and
#: before the first checkpoint the registration pins the whole history
#: -- a writer can never truncate records it would need to reopen.
WRITER_GROUP = "__writer__"

#: Batch size for streamed feed replay: large enough to amortize
#: per-record overhead, small enough that recovery memory stays bounded
#: by the database plus one batch.
REPLAY_BATCH_RECORDS = 512


@dataclass
class Result:
    """The outcome of executing a statement.

    Attributes:
        columns: output column names (empty for DDL / DML).
        rows: result rows (empty for DDL / DML).
        rowcount: number of rows affected (DML) or returned (queries).
    """

    columns: list[str]
    rows: list[tuple]
    rowcount: int

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def as_set(self) -> frozenset[tuple]:
        """The rows as a set (order-insensitive comparisons in tests)."""
        return frozenset(self.rows)

    def scalar(self) -> SQLValue:
        """The single value of a single-row, single-column result.

        Raises:
            ExecutionError: if the shape is not 1x1.
        """
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} rows"
            )
        return self.rows[0][0]


class Database:
    """An in-memory SQL database instance.

    Args:
        durable: a directory path; when given, every mutation (DDL and
            DML) is appended to a crash-safe partitioned change feed
            there, and opening the same directory again **restores** the
            database -- from the writer's latest :meth:`checkpoint`
            snapshot plus a replay of the retained suffix when one
            exists, by full replay otherwise.
        feed: an explicit :class:`~repro.engine.feed.ChangeFeed` to
            publish to (mutually exclusive with ``durable``); if it
            already holds history, the database is restored from it.
        retention: forwarded to the feed ``durable`` creates (``"keep"``
            / ``"truncate"`` / ``"compact"``); only valid with
            ``durable``.
        checkpoint_records: when set, automatically :meth:`checkpoint`
            once at least this many new feed records have been published
            since the last one (checked after each executed statement
            and bulk insert); needs a durable feed.
        plan_cache: whether :meth:`execute` / :meth:`query` reuse plans
            for repeated statement texts (see
            :class:`~repro.engine.planner.PlanCache`); disabling it is
            for benchmarking the uncached baseline.
    """

    def __init__(
        self,
        durable: Optional[str] = None,
        feed: Optional[ChangeFeed] = None,
        retention: Optional[str] = None,
        checkpoint_records: Optional[int] = None,
        plan_cache: bool = True,
    ) -> None:
        if durable is not None and feed is not None:
            raise ExecutionError("pass either durable= or feed=, not both")
        if feed is None and durable is not None:
            feed = ChangeFeed(
                directory=durable,
                **({} if retention is None else {"retention": retention}),
            )
        elif retention is not None:
            raise ExecutionError("retention= requires durable=")
        #: row-mutation feed consumed by incremental conflict detection;
        #: an in-memory feed buffers nothing until a cursor is opened.
        self.changes = ChangeLog(feed=feed) if feed is not None else ChangeLog()
        if checkpoint_records is not None and not self.changes.feed.durable:
            raise ExecutionError("checkpoint_records= needs a durable feed")
        self.catalog = Catalog(self.changes)
        self.stats = ExecutionStats()
        #: statement→plan cache keyed on normalized text + catalog epoch.
        self.plan_cache = PlanCache(self.stats, enabled=plan_cache)
        # index name (lower) -> (table name, column names) for diagnostics.
        self._indexes: dict[str, tuple[str, tuple[str, ...]]] = {}
        self.checkpoint_records = checkpoint_records
        #: how the last open recovered state: "fresh" (no history),
        #: "replay" (full feed replay) or "snapshot" (writer checkpoint
        #: + retained-suffix replay) -- and how many feed records that
        #: recovery replayed (the suffix only, under "snapshot").
        self.restore_mode = "fresh"
        self.restore_records = 0
        if self.changes.feed.has_history:
            self._restore_from_feed()
        #: the writer's registration as a retention participant (durable
        #: feeds only): until the first checkpoint it pins offset 0
        #: everywhere, so the writer's own (or a foreign) retention
        #: policy can never delete history the writer still needs.
        self._writer: Optional[FeedConsumer] = None
        if self.changes.feed.durable:
            self._writer = self.changes.feed.consumer(
                WRITER_GROUP, start="beginning"
            )
        self._checkpoint_seq = (
            self.changes.end if checkpoint_records is not None else 0
        )
        #: optional execution backend SELECTs are routed through (see
        #: :meth:`attach_backend`); None means native execution.
        self._backend: Optional["Backend"] = None

    # ------------------------------------------------------------ durability

    def checkpoint(self) -> dict[str, int]:
        """Persist a writer recovery snapshot at the current feed end.

        The snapshot (catalog + tables with tids, the replica snapshot
        format from :mod:`repro.engine.snapshot`) is stored under the
        :data:`WRITER_GROUP` registration and becomes the writer's
        recovery point: reopening the directory restores it and replays
        only the records published after it, and retention may now
        reclaim sealed segments below it.  Write order is crash-safe --
        the snapshot lands on disk *before* the registration's floor
        moves, so a crash in between merely retains more than strictly
        necessary.

        Returns the committed cut (offset per topic) the snapshot is
        bound to.

        Raises:
            ExecutionError: on a non-durable database.
        """
        feed = self.changes.feed
        if self._writer is None:
            raise ExecutionError("checkpoint() needs a durable database")
        feed.flush()
        committed = feed.end_offsets()
        feed.store_snapshot(WRITER_GROUP, committed, snapshot_database(self))
        # Only now advance the registered floor (and give retention a
        # chance to reclaim what the new snapshot just released).
        self._writer.seek_to_end()
        self._checkpoint_seq = self.changes.end
        return committed

    def _maybe_checkpoint(self) -> None:
        if self._writer is None or self.checkpoint_records is None:
            return
        if self.changes.end - self._checkpoint_seq >= self.checkpoint_records:
            self.checkpoint()

    def _restore_from_feed(self) -> None:
        """Rebuild catalog + tables from the feed's durable history.

        With a writer checkpoint on disk, recovery restores the snapshot
        and replays only the suffix published after it; otherwise the
        whole history is replayed.  Either way the replay is *streamed*
        (one segment per topic resident at a time), so restoring a
        database over a long feed costs memory proportional to the
        database, not to every write ever made.  Publishing is suspended
        during replay: recovery must not append its own history back
        onto the feed.

        Raises:
            FeedRetentionError: when retention reclaimed part of the
                history and no writer checkpoint covers it -- the
                directory belonged to a writer that never called
                :meth:`checkpoint` (or whose :data:`WRITER_GROUP`
                registration was dropped) while something else truncated
                the feed.
        """
        feed = self.changes.feed
        snapshot = feed.load_snapshot(WRITER_GROUP)
        if snapshot is None:
            try:
                self.restore_records = self._replay(None)
                self.restore_mode = "replay"
                return
            except FeedRetentionError as exc:
                # A reclaim can race the replay (another process's
                # retention); re-check for a checkpoint before giving
                # up, on a fresh catalog (the replay half-applied).
                snapshot = feed.load_snapshot(WRITER_GROUP)
                if snapshot is None:
                    raise FeedRetentionError(
                        f"cannot restore the database at {feed.directory}:"
                        " retention reclaimed part of its history and no"
                        " writer checkpoint covers it (see"
                        " Database.checkpoint())"
                    ) from exc
                self.catalog = Catalog(self.changes)
                self._indexes.clear()
        self.restore_records = self._replay(snapshot)
        self.restore_mode = "snapshot"

    def _replay(self, snapshot: Optional[tuple[dict[str, int], dict]]) -> int:
        """Apply the feed (past ``snapshot``'s cut, when given); returns
        the number of records replayed.

        Records are applied in bounded batches through
        :func:`apply_feed_records`, so replay amortizes per-record
        overhead while keeping recovery memory proportional to the
        database plus one batch, not the feed history.
        """
        feed = self.changes.feed
        start = None
        if snapshot is not None:
            committed, payload = snapshot
            restore_database(self, payload)
            start = committed
        count = 0
        batch: list[FeedRecord] = []
        with feed.suspended():
            for record in feed.iter_records(start=start):
                batch.append(record)
                count += 1
                if len(batch) >= REPLAY_BATCH_RECORDS:
                    apply_feed_records(self, batch)
                    batch.clear()
            if batch:
                apply_feed_records(self, batch)
        return count

    # ------------------------------------------------------------- execution

    def execute(self, sql: str) -> Result:
        """Parse and execute a single SQL statement.

        Repeated SELECT texts skip parsing and planning entirely when
        the statement→plan cache holds a plan compiled under the current
        catalog epoch (see :meth:`invalidate_plans`).
        """
        cached = self._run_cached(sql)
        if cached is not None:
            return cached
        statement = parse_statement(sql)
        if isinstance(statement, ast.SelectStatement):
            return self._run_select(sql, statement.query)
        return self.execute_statement(statement)

    def execute_script(self, sql: str) -> list[Result]:
        """Execute a ``;``-separated script, returning one result each."""
        return [self.execute_statement(stmt) for stmt in parse_script(sql)]

    def query(self, sql: str) -> Result:
        """Execute a statement that must be a query (plan-cached like
        :meth:`execute`)."""
        cached = self._run_cached(sql)
        if cached is not None:
            return cached
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise ExecutionError("query() requires a SELECT statement")
        return self._run_select(sql, statement.query)

    def _plan_epoch(self) -> tuple[int, int]:
        """The catalog epoch cached plans are stamped with: DDL bumps
        the first component, index/constraint changes the second."""
        return (self.changes.schema_version, self.changes.plan_epoch)

    def invalidate_plans(self) -> None:
        """Force fresh plans for every statement from now on.

        Bumps the change log's plan epoch, so the invalidation reaches
        every database bound to the same log.  Called automatically when
        indexes appear and when a CQA engine (re)binds a constraint set;
        exposed for anything else that changes planner-relevant state.
        """
        self.changes.invalidate_plans()

    # ------------------------------------------------------------- backends

    def attach_backend(self, backend: "Backend") -> None:
        """Route SELECT execution through ``backend``.

        The database stays the source of truth (DML and DDL always run
        natively); SELECTs are offered to the backend first when it
        pushes SQL, falling back to the native executor on
        :class:`~repro.errors.BackendError`.  Plan-cache entries are
        keyed on the backend id, so switching backends never replays a
        plan compiled for another executor.
        """
        backend.attach(self)
        self._backend = backend

    def detach_backend(self) -> None:
        """Return to native-only execution (the backend stays usable)."""
        self._backend = None

    @property
    def backend(self) -> Optional["Backend"]:
        """The attached execution backend, if any."""
        return self._backend

    @property
    def backend_id(self) -> str:
        """The plan-cache key component naming the current executor."""
        return self._backend.name if self._backend is not None else "native"

    def _push_select(self, query: ast.Query) -> Optional[Result]:
        """Offer a SELECT to the attached backend; None means run natively."""
        backend = self._backend
        if backend is None or not backend.capabilities.pushes_sql:
            return None
        try:
            columns, rows = backend.execute_query(query)
        except BackendError:
            self.stats.backend_fallbacks += 1
            return None
        self._maybe_checkpoint()
        return Result(list(columns), rows, len(rows))

    # ------------------------------------------------------------- execution

    def _run_cached(self, sql: str) -> Optional[Result]:
        """Execute ``sql`` from the plan cache; None on a cache miss."""
        planned = self.plan_cache.get(
            sql, self._plan_epoch(), backend=self.backend_id
        )
        if planned is None:
            return None
        self.stats.statements += 1
        rows = run_plan(planned.plan)
        self._maybe_checkpoint()
        return Result(planned.columns, rows, len(rows))

    def _run_select(self, sql: str, query: ast.Query) -> Result:
        """Plan, cache (when safe) and execute a SELECT."""
        self.stats.statements += 1
        pushed = self._push_select(query)
        if pushed is not None:
            return pushed
        self.stats.plan_cache_misses += 1
        planner = Planner(self.catalog, self.stats)
        planned = planner.plan_query(query)
        if planner.cacheable:
            self.plan_cache.put(
                sql, self._plan_epoch(), planned, backend=self.backend_id
            )
        rows = run_plan(planned.plan)
        self._maybe_checkpoint()
        return Result(planned.columns, rows, len(rows))

    def execute_statement(self, statement: ast.Statement) -> Result:
        """Execute an already-parsed statement."""
        result = self._execute_statement(statement)
        self._maybe_checkpoint()
        return result

    def _execute_statement(self, statement: ast.Statement) -> Result:
        self.stats.statements += 1
        if isinstance(statement, ast.SelectStatement):
            return self._execute_select(statement.query)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create(statement)
        if isinstance(statement, ast.DropTable):
            self.catalog.drop_table(statement.name, statement.if_exists)
            self._indexes = {
                name: info
                for name, info in self._indexes.items()
                if info[0].lower() != statement.name.lower()
            }
            return Result([], [], 0)
        if isinstance(statement, ast.CreateIndex):
            return self._execute_create_index(statement)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        raise ExecutionError(f"cannot execute {type(statement).__name__}")

    def plan(self, query: ast.Query) -> PlannedQuery:
        """Plan a query AST (exposed for the RA layer and for EXPLAIN)."""
        return Planner(self.catalog, self.stats).plan_query(query)

    def explain(self, sql: str) -> str:
        """The physical plan of a query, as an indented tree."""
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise ExecutionError("explain() requires a SELECT statement")
        return self.plan(statement.query).plan.explain()

    # ----------------------------------------------------- programmatic API

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, SQLType] | Column],
        primary_key: Optional[Sequence[str]] = None,
    ) -> Table:
        """Create a table without going through SQL (used by workloads)."""
        built = tuple(
            column if isinstance(column, Column) else Column(column[0], column[1])
            for column in columns
        )
        schema = TableSchema(name, built, tuple(primary_key or ()))
        return self.catalog.create_table(schema)

    def insert_rows(
        self, table_name: str, rows: Iterable[Sequence[SQLValue]]
    ) -> list[int]:
        """Bulk-insert rows; returns the assigned tids."""
        table = self.catalog.table(table_name)
        tids = [table.insert(row) for row in rows]
        self._maybe_checkpoint()
        return tids

    def table(self, name: str) -> Table:
        """Access a stored table by name."""
        return self.catalog.table(name)

    def lookup(self, table_name: str, row: Sequence[SQLValue]) -> frozenset[int]:
        """Point membership query: tids of rows equal to ``row``.

        This is the primitive the paper's base Prover uses ("executing the
        appropriate membership queries on the database"); it bumps the
        ``point_lookups`` statistic so benchmarks can count them.
        """
        self.stats.point_lookups += 1
        return self.catalog.table(table_name).lookup(row)

    # ------------------------------------------------------------- internals

    def _execute_select(self, query: ast.Query) -> Result:
        pushed = self._push_select(query)
        if pushed is not None:
            return pushed
        planned = self.plan(query)
        rows = run_plan(planned.plan)
        return Result(planned.columns, rows, len(rows))

    def _execute_create(self, statement: ast.CreateTable) -> Result:
        if statement.if_not_exists and self.catalog.has_table(statement.name):
            return Result([], [], 0)
        columns = tuple(
            Column(col.name, type_from_name(col.type_name), nullable=not col.not_null)
            for col in statement.columns
        )
        schema = TableSchema(statement.name, columns, statement.primary_key)
        self.catalog.create_table(schema)
        return Result([], [], 0)

    def _execute_create_index(self, statement: ast.CreateIndex) -> Result:
        key = statement.name.lower()
        if key in self._indexes:
            if statement.if_not_exists:
                return Result([], [], 0)
            raise CatalogError(f"index {statement.name!r} already exists")
        table = self.catalog.table(statement.table)
        positions = [table.schema.index_of(c) for c in statement.columns]
        table.create_index(positions)
        self._indexes[key] = (statement.table, statement.columns)
        return Result([], [], 0)

    def create_index(self, table_name: str, columns: Sequence[str]) -> None:
        """Programmatic CREATE INDEX (used by workloads and tests)."""
        name = f"idx_{table_name}_{'_'.join(columns)}"
        self._execute_create_index(
            ast.CreateIndex(name, table_name, tuple(columns), if_not_exists=True)
        )

    def indexes(self) -> dict[str, tuple[str, tuple[str, ...]]]:
        """Declared indexes: name -> (table, columns)."""
        return dict(self._indexes)

    def _evaluate_literal_row(
        self, exprs: Sequence[ast.Expression]
    ) -> list[SQLValue]:
        compiler = ExpressionCompiler(Scope([], None, 0))
        values = []
        for expr in exprs:
            evaluator = compiler.compile(expr)
            values.append(evaluator(((),)))
        return values

    def _execute_insert(self, statement: ast.Insert) -> Result:
        table = self.catalog.table(statement.table)
        schema = table.schema
        count = 0
        for row_exprs in statement.rows:
            values = self._evaluate_literal_row(row_exprs)
            if statement.columns:
                if len(values) != len(statement.columns):
                    raise ExecutionError(
                        f"INSERT has {len(values)} values for"
                        f" {len(statement.columns)} columns"
                    )
                full_row: list[SQLValue] = [None] * schema.arity
                for column_name, value in zip(statement.columns, values):
                    full_row[schema.index_of(column_name)] = value
                table.insert(full_row)
            else:
                table.insert(values)
            count += 1
        return Result([], [], count)

    def _matching_tids(
        self, table: Table, where: Optional[ast.Expression]
    ) -> list[tuple[int, tuple]]:
        """(tid, row) pairs of rows satisfying ``where``."""
        scan = Scan(table, self.stats, include_tid=True)
        node = scan
        if where is not None:
            scope = Scope(
                [(table.schema.name, c.lower()) for c in table.schema.column_names],
                None,
                0,
            )
            planner = Planner(self.catalog, self.stats)
            compiler = planner._compiler(scope)
            node = Filter(scan, compiler.compile_predicate(where))
        return [(row[-1], row[:-1]) for row in run_plan(node)]

    def _execute_delete(self, statement: ast.Delete) -> Result:
        table = self.catalog.table(statement.table)
        matches = self._matching_tids(table, statement.where)
        for tid, _row in matches:
            table.delete(tid)
        return Result([], [], len(matches))

    def _execute_update(self, statement: ast.Update) -> Result:
        table = self.catalog.table(statement.table)
        schema = table.schema
        scope = Scope(
            [(schema.name, c.lower()) for c in schema.column_names], None, 0
        )
        planner = Planner(self.catalog, self.stats)
        compiler = planner._compiler(scope)
        compiled = [
            (schema.index_of(column), compiler.compile(value))
            for column, value in statement.assignments
        ]
        matches = self._matching_tids(table, statement.where)
        for tid, row in matches:
            new_row = list(row)
            for index, evaluator in compiled:
                new_row[index] = evaluator((row,))
            table.update(tid, new_row)
        return Result([], [], len(matches))


def apply_feed_record(db: Database, record: FeedRecord) -> None:
    """Apply one change-feed record to a database (replay primitive).

    Used by durable-database recovery and by replicas rebuilding their
    own copy of the state: DDL records create/drop tables, change
    records restore/delete rows under their original tids (an UPDATE
    arrives as its delete + insert pair).

    Raises:
        FeedError: for an unknown record kind.
    """
    from repro.errors import FeedError

    if record.kind == RECORD_CHANGE:
        table = db.catalog.table(record.topic)
        if record.op == "insert":
            table.restore(record.tid, record.row)
        else:
            table.delete(record.tid)
        return
    if record.kind == RECORD_CREATE_TABLE:
        db.catalog.create_table(deserialize_schema(record.schema))
        return
    if record.kind == RECORD_DROP_TABLE:
        db.catalog.drop_table(record.table, if_exists=True)
        return
    raise FeedError(f"unknown feed record kind {record.kind!r}")


def apply_feed_records(db: Database, records: Sequence[FeedRecord]) -> None:
    """Apply a poll batch of feed records (batched replay primitive).

    Equivalent to calling :func:`apply_feed_record` on each record in
    order, but runs of change records on the same topic are folded into
    one :meth:`~repro.engine.storage.Table.apply_changes` call -- one
    catalog lookup, one columnar-cache invalidation and one tight loop
    per run instead of full per-record dispatch.  This is what lets feed
    replay and replica sync amortize per-record overhead across a batch.

    Order is preserved exactly (a DDL record ends the current run), so
    the database state after this call is identical to the per-record
    replay -- including on failure, where every record before the
    failing one has been applied.

    Raises:
        FeedError: for an unknown record kind.
    """
    count = len(records)
    start = 0
    while start < count:
        record = records[start]
        if record.kind != RECORD_CHANGE:
            apply_feed_record(db, record)
            start += 1
            continue
        topic = record.topic
        stop = start + 1
        while stop < count:
            nxt = records[stop]
            if nxt.kind != RECORD_CHANGE or nxt.topic != topic:
                break
            stop += 1
        db.catalog.table(topic).apply_changes(
            [(r.tid, r.row, r.op) for r in records[start:stop]]
        )
        start = stop
