"""Heap storage for tables.

Every stored row is identified by a *tuple id* (tid), a small integer that
is stable for the lifetime of the row.  Tids are the vertices of the
conflict hypergraph, so the whole CQA stack depends on them:  conflict
detection emits sets of tids, the Prover reasons about tids, and membership
checks translate value tuples back to tids through the value index kept
here.

The value index (value tuple -> set of tids) also serves the engine's point
membership lookups, which is how the paper's base system answers the
Prover's membership checks "by simply executing the appropriate membership
queries on the database".
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Set, Tuple

from repro.engine.changelog import OP_DELETE, OP_INSERT, Change, ChangeLog
from repro.engine.columnar import ColumnStore
from repro.engine.schema import TableSchema
from repro.engine.types import SQLValue
from repro.errors import ExecutionError

Row = Tuple[SQLValue, ...]


class Table:
    """A stored table: schema + rows addressable by tid.

    Duplicate rows are permitted in storage (SQL bag semantics); they get
    distinct tids.  The CQA layer treats facts at the value level and
    handles duplicates explicitly (see ``repro.core.facts``).

    When a :class:`~repro.engine.changelog.ChangeLog` is attached, every
    mutation is published to it (an UPDATE as delete + insert under the
    same tid), which is what keeps the conflict hypergraph incrementally
    maintainable.
    """

    def __init__(
        self, schema: TableSchema, changelog: Optional[ChangeLog] = None
    ) -> None:
        self.schema = schema
        self._rows: Dict[int, Row] = {}
        self._by_value: Dict[Row, Set[int]] = {}
        # Secondary hash indexes: column positions -> (key values -> tids).
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple, Set[int]]] = {}
        self._next_tid = 0
        self._changelog = changelog
        self._key = schema.name.lower()
        # Column-major snapshot for batch scans; dropped on any mutation.
        self._columnar: Optional[ColumnStore] = None
        # Monotone mutation counter; backends compare it against the
        # version they last mirrored to decide whether to re-sync.
        self.version = 0

    # -------------------------------------------------------------- indexes

    def create_index(self, positions: Sequence[int]) -> None:
        """Create (or keep) a hash index over the given column positions."""
        key = tuple(positions)
        if not key or any(not 0 <= p < self.schema.arity for p in key):
            raise ExecutionError(
                f"bad index column positions {key} for table"
                f" {self.schema.name!r}"
            )
        if key in self._indexes:
            return
        index: Dict[Tuple, Set[int]] = {}
        for tid, row in self._rows.items():
            index.setdefault(tuple(row[p] for p in key), set()).add(tid)
        self._indexes[key] = index
        # A new access path can change which plan the planner would pick;
        # force cached statement plans to be rebuilt.
        if self._changelog is not None:
            self._changelog.invalidate_plans()

    def has_index(self, positions: Sequence[int]) -> bool:
        """Whether an index over exactly these positions exists."""
        return tuple(positions) in self._indexes

    def indexed_column_sets(self) -> list[Tuple[int, ...]]:
        """The position tuples of all secondary indexes."""
        return list(self._indexes.keys())

    def index_lookup(
        self, positions: Sequence[int], values: Sequence[SQLValue]
    ) -> frozenset[int]:
        """Tids matching ``values`` on an existing index.

        Raises:
            ExecutionError: when no such index exists.
        """
        index = self._indexes.get(tuple(positions))
        if index is None:
            raise ExecutionError(
                f"table {self.schema.name!r} has no index on {tuple(positions)}"
            )
        return frozenset(index.get(tuple(values), frozenset()))

    def _index_add(self, tid: int, row: Row) -> None:
        for positions, index in self._indexes.items():
            index.setdefault(tuple(row[p] for p in positions), set()).add(tid)

    def _index_remove(self, tid: int, row: Row) -> None:
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            owners = index.get(key)
            if owners is not None:
                owners.discard(tid)
                if not owners:
                    del index[key]

    # ------------------------------------------------------------------ DML

    def insert(self, values: Sequence[SQLValue]) -> int:
        """Insert a row (validated against the schema); returns its tid."""
        row = self.schema.coerce_row(values)
        tid = self._next_tid
        self._next_tid += 1
        self._rows[tid] = row
        self._by_value.setdefault(row, set()).add(tid)
        self._index_add(tid, row)
        self._columnar = None
        self.version += 1
        if self._changelog is not None:
            self._changelog.record(Change(self._key, tid, row, OP_INSERT))
        return tid

    def insert_many(self, rows: Sequence[Sequence[SQLValue]]) -> list[int]:
        """Insert several rows; returns their tids in order."""
        return [self.insert(row) for row in rows]

    @property
    def next_tid(self) -> int:
        """The tid the next insert will receive.

        Part of a table's durable state: a snapshot that restored only
        the live rows would re-issue the tids of rows that lived and
        died before the cut, diverging from a full-history replay (and
        from every replica that witnessed those rows).
        """
        return self._next_tid

    def reserve_tids(self, next_tid: int) -> None:
        """Raise the allocation cursor to at least ``next_tid``
        (snapshot restore; never lowers it)."""
        self._next_tid = max(self._next_tid, next_tid)

    def restore(self, tid: int, values: Sequence[SQLValue]) -> None:
        """Re-insert a row under an explicit tid (change-feed replay).

        Tids are hypergraph vertices, so a replica rebuilding state from
        the feed must reproduce them exactly.  Nothing is published to
        the change log -- replay is history, not new history.

        Raises:
            ExecutionError: if the tid is already occupied.
        """
        if tid in self._rows:
            raise ExecutionError(
                f"table {self.schema.name!r} already stores tid {tid}"
            )
        row = self.schema.coerce_row(values)
        self._next_tid = max(self._next_tid, tid + 1)
        self._rows[tid] = row
        self._by_value.setdefault(row, set()).add(tid)
        self._index_add(tid, row)
        self._columnar = None
        self.version += 1

    def apply_changes(
        self, changes: Sequence[tuple[int, Optional[Sequence[SQLValue]], str]]
    ) -> None:
        """Replay a batch of feed change records as ``(tid, row, op)``.

        The batched twin of :meth:`restore` + :meth:`delete` for feed
        replay: one call amortizes attribute lookups, the columnar-cache
        invalidation and the publish check across the whole poll batch
        instead of paying them per record.  Exactly like :meth:`restore`,
        nothing is published to the change log -- replay is history.

        Raises:
            ExecutionError: on a tid collision (insert) or a missing tid
                (delete); storage state reflects every change before the
                failing one, matching the record-at-a-time replay.
        """
        rows = self._rows
        by_value = self._by_value
        indexes = self._indexes
        coerce = self.schema.coerce_row
        next_tid = self._next_tid
        self._columnar = None
        self.version += 1
        for tid, values, op in changes:
            if op == OP_INSERT:
                if tid in rows:
                    self._next_tid = next_tid
                    raise ExecutionError(
                        f"table {self.schema.name!r} already stores tid {tid}"
                    )
                row = coerce(values)
                if tid >= next_tid:
                    next_tid = tid + 1
                rows[tid] = row
                by_value.setdefault(row, set()).add(tid)
                if indexes:
                    self._index_add(tid, row)
            else:
                old = rows.pop(tid, None)
                if old is None:
                    self._next_tid = next_tid
                    raise ExecutionError(
                        f"table {self.schema.name!r} has no tuple with tid {tid}"
                    )
                owners = by_value[old]
                owners.discard(tid)
                if not owners:
                    del by_value[old]
                if indexes:
                    self._index_remove(tid, old)
        self._next_tid = next_tid

    def delete(self, tid: int) -> None:
        """Delete a row by tid.

        Raises:
            ExecutionError: if the tid does not exist.
        """
        row = self._rows.pop(tid, None)
        if row is None:
            raise ExecutionError(
                f"table {self.schema.name!r} has no tuple with tid {tid}"
            )
        owners = self._by_value[row]
        owners.discard(tid)
        if not owners:
            del self._by_value[row]
        self._index_remove(tid, row)
        self._columnar = None
        self.version += 1
        if self._changelog is not None:
            self._changelog.record(Change(self._key, tid, row, OP_DELETE))

    def update(self, tid: int, values: Sequence[SQLValue]) -> None:
        """Replace the row stored under ``tid``, keeping the tid stable.

        Raises:
            ExecutionError: if the tid does not exist.
        """
        old_row = self._rows.get(tid)
        if old_row is None:
            raise ExecutionError(
                f"table {self.schema.name!r} has no tuple with tid {tid}"
            )
        new_row = self.schema.coerce_row(values)
        owners = self._by_value[old_row]
        owners.discard(tid)
        if not owners:
            del self._by_value[old_row]
        self._index_remove(tid, old_row)
        self._rows[tid] = new_row
        self._by_value.setdefault(new_row, set()).add(tid)
        self._index_add(tid, new_row)
        self._columnar = None
        self.version += 1
        if self._changelog is not None:
            self._changelog.record(Change(self._key, tid, old_row, OP_DELETE))
            self._changelog.record(Change(self._key, tid, new_row, OP_INSERT))

    # --------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: Sequence[SQLValue]) -> bool:
        return tuple(row) in self._by_value

    def get(self, tid: int) -> Row:
        """The row stored under ``tid``.

        Raises:
            ExecutionError: if the tid does not exist.
        """
        try:
            return self._rows[tid]
        except KeyError:
            raise ExecutionError(
                f"table {self.schema.name!r} has no tuple with tid {tid}"
            ) from None

    def has_tid(self, tid: int) -> bool:
        """Whether a row with this tid is currently stored."""
        return tid in self._rows

    def tids(self) -> Iterator[int]:
        """All current tids (insertion order)."""
        return iter(self._rows.keys())

    def rows(self) -> Iterator[Row]:
        """All current rows (insertion order)."""
        return iter(self._rows.values())

    def items(self) -> Iterator[tuple[int, Row]]:
        """All ``(tid, row)`` pairs (insertion order)."""
        return iter(self._rows.items())

    def lookup(self, row: Sequence[SQLValue]) -> frozenset[int]:
        """Tids of rows exactly equal to ``row`` (empty set when absent).

        This is the engine-level *membership query* primitive.
        """
        return frozenset(self._by_value.get(tuple(row), frozenset()))

    def has_duplicates(self) -> bool:
        """Whether any row value occurs more than once (bag, not set)."""
        return any(len(owners) > 1 for owners in self._by_value.values())

    def columnar(self) -> ColumnStore:
        """The column-major batch snapshot of the current rows.

        Built lazily and cached; **any** mutation (insert / delete /
        update / replay) drops the cache, so the returned store always
        reflects the table as of this call.  Scan/filter hot loops use
        it to amortize per-row overhead into per-batch operations (see
        :mod:`repro.engine.columnar` for the full contract).
        """
        store = self._columnar
        if store is None:
            store = ColumnStore(list(self._rows.items()), self.schema.arity)
            self._columnar = store
        return store

    def snapshot(self) -> Dict[int, Row]:
        """A shallow copy of the tid -> row mapping (for repair checkers)."""
        return dict(self._rows)

    def restricted_rows(
        self, keep: Optional[frozenset[int]]
    ) -> Iterator[tuple[int, Row]]:
        """``(tid, row)`` pairs restricted to ``keep`` (or all when None).

        Used to evaluate queries over a repair, or over the conflict-free
        core of a table, without copying the data.
        """
        if keep is None:
            yield from self._rows.items()
            return
        for tid, row in self._rows.items():
            if tid in keep:
                yield tid, row
