"""Database snapshots: the shared recovery wire format.

A snapshot is a JSON-safe serialization of a whole database -- every
table's schema plus its rows *under their original tids* (tids are the
conflict hypergraph's vertices, so recovery must reproduce them
exactly).  Three recovery participants share the format:

* **Replicas** (:class:`~repro.conflicts.replica.ReplicaHypergraph`)
  store one as their consumer group's snapshot so they can re-bootstrap
  after feed retention truncated their committed prefix.
* **The durable writer itself** (:class:`~repro.engine.database.Database`
  with a durable feed) checkpoints one so ``Database(durable=dir)`` can
  reopen as *snapshot + retained-suffix replay* even after its own
  retention policy deleted the sealed segments a full replay would need.
* **Shard workers** (:class:`~repro.conflicts.shard.ShardWorker`)
  checkpoint *partial* snapshots -- every schema, but rows only for the
  relations their topic subscription covers -- and the shard merge
  assembles a full database by restoring each worker's owned slice into
  one target (``restore_database(..., merge=True)``).

Values ride through :func:`~repro.engine.feed.encode_value` /
:func:`~repro.engine.feed.decode_value`, so non-finite REALs survive the
strict-JSON snapshot files exactly like they survive feed segments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.engine.feed import (
    decode_value,
    deserialize_schema,
    encode_value,
    serialize_schema,
)

if TYPE_CHECKING:
    from repro.engine.database import Database


def snapshot_database(
    db: Database, tables: Optional[Iterable[str]] = None
) -> dict:
    """Serialize ``db`` (schemas + rows with tids) to a JSON-safe dict.

    Tables appear in catalog (creation) order; restoring them in that
    order can therefore never trip over a dependency the original
    database did not have.

    Args:
        tables: when given, a *partial* snapshot: every table's schema
            is still serialized (a restore must rebuild the full
            catalog), but rows -- and the tid allocation cursor --
            only for the named tables (case-insensitive).  This is the
            shard-worker shape: one worker's slice of the database.
    """
    include = (
        None if tables is None else {str(name).lower() for name in tables}
    )
    serialized = []
    for name in db.catalog.table_names():
        table = db.table(name)
        entry: dict[str, object] = {"schema": serialize_schema(table.schema)}
        if include is None or name.lower() in include:
            # The allocation cursor travels with the rows: rows that
            # lived and died before the cut must not get their tids
            # re-issued after a restore (a full-history replay would
            # never re-issue them).
            entry["next_tid"] = table.next_tid
            entry["rows"] = [
                [tid, [encode_value(v) for v in row]]
                for tid, row in table.items()
            ]
        serialized.append(entry)
    return {"tables": serialized}


def restore_database(
    db: Database,
    payload: dict,
    tables: Optional[Iterable[str]] = None,
    merge: bool = False,
) -> None:
    """Rebuild ``db`` from a :func:`snapshot_database` payload.

    Publishing is suspended for the duration: restoring history must
    not append that history back onto the database's own change feed.

    Args:
        tables: restore rows only for these tables (case-insensitive);
            schemas are always restored, so the catalog comes back in
            full.  A replica subscribed to a topic subset restores the
            writer's checkpoint through this filter.
        merge: tolerate tables that already exist (rows are added into
            them, the allocation cursor is raised, the schema is left
            as-is).  The shard merge restores one worker's owned slice
            after another into the same target database.
    """
    include = (
        None if tables is None else {str(name).lower() for name in tables}
    )
    with db.changes.feed.suspended():
        for entry in payload.get("tables", []):
            schema = deserialize_schema(entry["schema"])
            if merge and db.catalog.has_table(schema.name):
                table = db.catalog.table(schema.name)
            else:
                table = db.catalog.create_table(schema)
            if include is not None and schema.name.lower() not in include:
                continue  # partial restore: schema only
            for tid, row in entry.get("rows", []):
                table.restore(int(tid), tuple(decode_value(v) for v in row))
            table.reserve_tids(int(entry.get("next_tid", 0)))
