"""Database snapshots: the shared recovery wire format.

A snapshot is a JSON-safe serialization of a whole database -- every
table's schema plus its rows *under their original tids* (tids are the
conflict hypergraph's vertices, so recovery must reproduce them
exactly).  Two recovery participants share the format:

* **Replicas** (:class:`~repro.conflicts.replica.ReplicaHypergraph`)
  store one as their consumer group's snapshot so they can re-bootstrap
  after feed retention truncated their committed prefix.
* **The durable writer itself** (:class:`~repro.engine.database.Database`
  with a durable feed) checkpoints one so ``Database(durable=dir)`` can
  reopen as *snapshot + retained-suffix replay* even after its own
  retention policy deleted the sealed segments a full replay would need.

Values ride through :func:`~repro.engine.feed.encode_value` /
:func:`~repro.engine.feed.decode_value`, so non-finite REALs survive the
strict-JSON snapshot files exactly like they survive feed segments.
"""

from __future__ import annotations

from repro.engine.feed import (
    decode_value,
    deserialize_schema,
    encode_value,
    serialize_schema,
)


def snapshot_database(db) -> dict:
    """Serialize ``db`` (schemas + rows with tids) to a JSON-safe dict.

    Tables appear in catalog (creation) order; restoring them in that
    order can therefore never trip over a dependency the original
    database did not have.
    """
    tables = []
    for name in db.catalog.table_names():
        table = db.table(name)
        tables.append(
            {
                "schema": serialize_schema(table.schema),
                # The allocation cursor travels with the rows: rows that
                # lived and died before the cut must not get their tids
                # re-issued after a restore (a full-history replay would
                # never re-issue them).
                "next_tid": table.next_tid,
                "rows": [
                    [tid, [encode_value(v) for v in row]]
                    for tid, row in table.items()
                ],
            }
        )
    return {"tables": tables}


def restore_database(db, payload: dict) -> None:
    """Rebuild ``db`` (assumed empty) from a :func:`snapshot_database`
    payload.

    Publishing is suspended for the duration: restoring history must
    not append that history back onto the database's own change feed.
    """
    with db.changes.feed.suspended():
        for entry in payload.get("tables", []):
            schema = deserialize_schema(entry["schema"])
            table = db.catalog.create_table(schema)
            for tid, row in entry.get("rows", []):
                table.restore(int(tid), tuple(decode_value(v) for v in row))
            table.reserve_tids(int(entry.get("next_tid", 0)))
