"""In-memory relational engine: the RDBMS substrate under Hippo.

The original system ran against PostgreSQL through JDBC; this package is
the equivalent substrate, providing SQL execution, point membership
lookups and execution statistics.
"""

from repro.engine.changelog import Change, ChangeCursor, ChangeLog
from repro.engine.database import Database, Result, apply_feed_record
from repro.engine.feed import ChangeFeed, FeedConsumer, FeedRecord, TopicInfo
from repro.engine.io import dump_csv, dump_sql, load_csv, restore_sql
from repro.engine.schema import Column, TableSchema, make_schema
from repro.engine.stats import ExecutionStats
from repro.engine.storage import Table
from repro.engine.types import NULL, SQLType, SQLValue

__all__ = [
    "Change",
    "ChangeCursor",
    "ChangeFeed",
    "ChangeLog",
    "Database",
    "FeedConsumer",
    "FeedRecord",
    "TopicInfo",
    "apply_feed_record",
    "Result",
    "dump_csv",
    "dump_sql",
    "load_csv",
    "restore_sql",
    "Column",
    "TableSchema",
    "make_schema",
    "ExecutionStats",
    "Table",
    "NULL",
    "SQLType",
    "SQLValue",
]
