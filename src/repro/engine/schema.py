"""Table schemas: columns, types and primary keys."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.engine.types import SQLType, SQLValue, coerce_value
from repro.errors import SchemaError


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    Attributes:
        name: column name (case-preserved; lookups are case-insensitive).
        sql_type: declared type.
        nullable: whether NULL values are accepted on insert.
    """

    name: str
    sql_type: SQLType
    nullable: bool = True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.sql_type}{null}"


@dataclass(frozen=True)
class TableSchema:
    """The schema of a stored table.

    Attributes:
        name: table name.
        columns: ordered column definitions.
        primary_key: names of primary-key columns (may be empty).  The
            engine does *not* enforce key uniqueness on insert -- Hippo's
            whole point is querying databases whose data violates its
            constraints -- but the key is recorded so functional
            dependencies can be derived from the schema.
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            seen.add(lowered)
        for key_col in self.primary_key:
            if key_col.lower() not in seen:
                raise SchemaError(
                    f"primary key column {key_col!r} not in table {self.name!r}"
                )

    @property
    def column_names(self) -> tuple[str, ...]:
        """Ordered column names."""
        return tuple(column.name for column in self.columns)

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def has_column(self, name: str) -> bool:
        """Case-insensitive column existence test."""
        lowered = name.lower()
        return any(column.name.lower() == lowered for column in self.columns)

    def index_of(self, name: str) -> int:
        """Position of a column by (case-insensitive) name.

        Raises:
            SchemaError: if the column does not exist.
        """
        lowered = name.lower()
        for position, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return position
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def column(self, name: str) -> Column:
        """The :class:`Column` with the given name."""
        return self.columns[self.index_of(name)]

    def coerce_row(self, values: Sequence[SQLValue]) -> tuple[SQLValue, ...]:
        """Validate and coerce an inserted row against this schema.

        Raises:
            SchemaError: on arity mismatch or NOT NULL violation.
            TypeError_: on an untypable / incompatible value.
        """
        if len(values) != self.arity:
            raise SchemaError(
                f"table {self.name!r} expects {self.arity} values,"
                f" got {len(values)}"
            )
        coerced = []
        for column, value in zip(self.columns, values):
            if value is None and not column.nullable:
                raise SchemaError(
                    f"column {self.name}.{column.name} is NOT NULL"
                )
            coerced.append(coerce_value(value, column.sql_type))
        return tuple(coerced)

    def key_indexes(self) -> tuple[int, ...]:
        """Positions of the primary-key columns."""
        return tuple(self.index_of(name) for name in self.primary_key)


def make_schema(
    name: str,
    columns: Iterable[tuple[str, SQLType] | Column],
    primary_key: Optional[Sequence[str]] = None,
) -> TableSchema:
    """Convenience constructor used heavily by tests and workloads.

    ``columns`` may mix ``(name, type)`` pairs and :class:`Column` objects.
    """
    built = tuple(
        column if isinstance(column, Column) else Column(column[0], column[1])
        for column in columns
    )
    return TableSchema(name, built, tuple(primary_key or ()))
