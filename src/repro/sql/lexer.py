"""Hand-written lexer for the SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import LexerError

#: Words the parser treats as keywords (upper-cased).  Identifiers that
#: collide with these must be double-quoted.
KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET AS ON
    JOIN INNER LEFT OUTER CROSS UNION EXCEPT INTERSECT ALL DISTINCT
    AND OR NOT IN IS NULL LIKE BETWEEN EXISTS CASE WHEN THEN ELSE END
    CREATE DROP TABLE IF PRIMARY KEY INSERT INTO VALUES DELETE UPDATE SET
    TRUE FALSE ASC DESC
    """.split()
)

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = ("<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/", "%")

_PUNCTUATION = ("(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    """A lexical token.

    ``kind`` is one of: ``keyword``, ``ident``, ``int``, ``float``,
    ``string``, ``op``, ``punct``, ``eof``.  ``value`` holds the normalized
    payload: upper-cased keyword, case-preserved identifier, Python
    int/float, unescaped string, or the operator/punctuation text.
    """

    kind: str
    value: object
    position: int

    def matches(self, kind: str, value: Optional[object] = None) -> bool:
        """Whether this token has the given kind (and value, if supplied)."""
        return self.kind == kind and (value is None or self.value == value)


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list ending with an ``eof`` token.

    Raises:
        LexerError: on an unterminated string or unknown character.
    """
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    length = len(text)
    position = 0
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if char == "-" and text.startswith("--", position):
            newline = text.find("\n", position)
            position = length if newline < 0 else newline + 1
            continue
        if char == "'":
            token, position = _scan_string(text, position)
            yield token
            continue
        if char == '"':
            token, position = _scan_quoted_ident(text, position)
            yield token
            continue
        if char.isdigit() or (
            char == "." and position + 1 < length and text[position + 1].isdigit()
        ):
            token, position = _scan_number(text, position)
            yield token
            continue
        if char.isalpha() or char == "_":
            token, position = _scan_word(text, position)
            yield token
            continue
        matched_op = next(
            (op for op in _OPERATORS if text.startswith(op, position)), None
        )
        if matched_op is not None:
            # Normalize != to the SQL-standard <>.
            value = "<>" if matched_op == "!=" else matched_op
            yield Token("op", value, position)
            position += len(matched_op)
            continue
        if char in _PUNCTUATION:
            yield Token("punct", char, position)
            position += 1
            continue
        raise LexerError(f"unexpected character {char!r}", position)
    yield Token("eof", None, length)


def _scan_string(text: str, start: int) -> tuple[Token, int]:
    """Scan a single-quoted string with ``''`` escaping."""
    position = start + 1
    pieces: list[str] = []
    while position < len(text):
        char = text[position]
        if char == "'":
            if text.startswith("''", position):
                pieces.append("'")
                position += 2
                continue
            return Token("string", "".join(pieces), start), position + 1
        pieces.append(char)
        position += 1
    raise LexerError("unterminated string literal", start)


def _scan_quoted_ident(text: str, start: int) -> tuple[Token, int]:
    """Scan a double-quoted identifier (no escaping of inner quotes)."""
    end = text.find('"', start + 1)
    if end < 0:
        raise LexerError("unterminated quoted identifier", start)
    return Token("ident", text[start + 1 : end], start), end + 1


def _scan_number(text: str, start: int) -> tuple[Token, int]:
    position = start
    seen_dot = False
    seen_exp = False
    while position < len(text):
        char = text[position]
        if char.isdigit():
            position += 1
        elif char == "." and not seen_dot and not seen_exp:
            seen_dot = True
            position += 1
        elif char in "eE" and not seen_exp and position > start:
            nxt = position + 1
            if nxt < len(text) and (text[nxt].isdigit() or text[nxt] in "+-"):
                seen_exp = True
                position = nxt + 1 if text[nxt] in "+-" else nxt
            else:
                break
        else:
            break
    literal = text[start:position]
    if seen_dot or seen_exp:
        return Token("float", float(literal), start), position
    return Token("int", int(literal), start), position


def _scan_word(text: str, start: int) -> tuple[Token, int]:
    position = start
    while position < len(text) and (text[position].isalnum() or text[position] == "_"):
        position += 1
    word = text[start:position]
    upper = word.upper()
    if upper in KEYWORDS:
        return Token("keyword", upper, start), position
    return Token("ident", word, start), position
