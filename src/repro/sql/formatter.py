"""Render SQL ASTs back to SQL text.

Used to display the output of the query-rewriting baseline (which builds
``NOT EXISTS`` residues as ASTs), to round-trip queries in tests, and to
show envelope queries in the examples -- mirroring how Hippo hands the
envelope to the RDBMS as SQL.
"""

from __future__ import annotations

from typing import Union

from repro.engine.types import literal_sql
from repro.sql import ast

_IDENT_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def format_identifier(name: str) -> str:
    """Quote an identifier only when necessary."""
    from repro.sql.lexer import KEYWORDS

    if name and all(ch in _IDENT_SAFE for ch in name) and not name[0].isdigit():
        if name.upper() not in KEYWORDS:
            return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def format_expression(expr: ast.Expression) -> str:
    """Render an expression (fully parenthesized where precedence matters)."""
    if isinstance(expr, ast.Literal):
        return literal_sql(expr.value)
    if isinstance(expr, ast.ColumnRef):
        column = format_identifier(expr.name)
        if expr.table:
            return f"{format_identifier(expr.table)}.{column}"
        return column
    if isinstance(expr, ast.BinaryOp):
        left = format_expression(expr.left)
        right = format_expression(expr.right)
        if expr.op in ("AND", "OR"):
            return f"({left} {expr.op} {right})"
        return f"({left} {expr.op} {right})"
    if isinstance(expr, ast.UnaryOp):
        operand = format_expression(expr.operand)
        if expr.op == "NOT":
            return f"(NOT {operand})"
        return f"({expr.op}{operand})"
    if isinstance(expr, ast.FunctionCall):
        if expr.star:
            return f"{expr.name}(*)"
        args = ", ".join(format_expression(arg) for arg in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, ast.IsNull):
        not_part = " NOT" if expr.negated else ""
        return f"({format_expression(expr.operand)} IS{not_part} NULL)"
    if isinstance(expr, ast.InList):
        items = ", ".join(format_expression(item) for item in expr.items)
        not_part = "NOT " if expr.negated else ""
        return f"({format_expression(expr.operand)} {not_part}IN ({items}))"
    if isinstance(expr, ast.Between):
        not_part = "NOT " if expr.negated else ""
        return (
            f"({format_expression(expr.operand)} {not_part}BETWEEN "
            f"{format_expression(expr.low)} AND {format_expression(expr.high)})"
        )
    if isinstance(expr, ast.Like):
        not_part = "NOT " if expr.negated else ""
        return (
            f"({format_expression(expr.operand)} {not_part}LIKE "
            f"{format_expression(expr.pattern)})"
        )
    if isinstance(expr, ast.Exists):
        not_part = "NOT " if expr.negated else ""
        return f"({not_part}EXISTS ({format_query(expr.query)}))"
    if isinstance(expr, ast.InSubquery):
        not_part = "NOT " if expr.negated else ""
        return (
            f"({format_expression(expr.operand)} {not_part}IN "
            f"({format_query(expr.query)}))"
        )
    if isinstance(expr, ast.Case):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(format_expression(expr.operand))
        for condition, result in expr.whens:
            parts.append(
                f"WHEN {format_expression(condition)} THEN {format_expression(result)}"
            )
        if expr.else_ is not None:
            parts.append(f"ELSE {format_expression(expr.else_)}")
        parts.append("END")
        return " ".join(parts)
    raise TypeError(f"cannot format expression node {type(expr).__name__}")


def _format_from_item(item: ast.FromItem) -> str:
    if isinstance(item, ast.TableRef):
        text = format_identifier(item.name)
        if item.alias:
            text += f" AS {format_identifier(item.alias)}"
        return text
    if isinstance(item, ast.DerivedTable):
        return f"({format_query(item.query)}) AS {format_identifier(item.alias)}"
    if isinstance(item, ast.Join):
        left = _format_from_item(item.left)
        right = _format_from_item(item.right)
        if item.kind == "cross":
            return f"{left} CROSS JOIN {right}"
        keyword = {"inner": "JOIN", "left": "LEFT JOIN"}[item.kind]
        on = f" ON {format_expression(item.on)}" if item.on is not None else ""
        return f"{left} {keyword} {right}{on}"
    raise TypeError(f"cannot format FROM item {type(item).__name__}")


def _format_core(core: ast.SelectCore) -> str:
    items = []
    for item in core.items:
        if isinstance(item, ast.Star):
            items.append(f"{format_identifier(item.table)}.*" if item.table else "*")
        else:
            rendered = format_expression(item.expr)
            if item.alias:
                rendered += f" AS {format_identifier(item.alias)}"
            items.append(rendered)
    parts = ["SELECT"]
    if core.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(items))
    if core.from_items:
        parts.append("FROM")
        parts.append(", ".join(_format_from_item(item) for item in core.from_items))
    if core.where is not None:
        parts.append(f"WHERE {format_expression(core.where)}")
    if core.group_by:
        keys = ", ".join(format_expression(key) for key in core.group_by)
        parts.append(f"GROUP BY {keys}")
    if core.having is not None:
        parts.append(f"HAVING {format_expression(core.having)}")
    return " ".join(parts)


def _format_body(body: Union[ast.SelectCore, ast.SetOperation]) -> str:
    if isinstance(body, ast.SelectCore):
        return _format_core(body)
    op = body.op.upper() + (" ALL" if body.all else "")
    return f"({_format_body(body.left)}) {op} ({_format_body(body.right)})"


def format_query(query: ast.Query) -> str:
    """Render a :class:`~repro.sql.ast.Query` as SQL text."""
    parts = [_format_body(query.body)]
    if query.order_by:
        keys = ", ".join(
            format_expression(item.expr) + ("" if item.ascending else " DESC")
            for item in query.order_by
        )
        parts.append(f"ORDER BY {keys}")
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    if query.offset is not None:
        parts.append(f"OFFSET {query.offset}")
    return " ".join(parts)


def format_statement(statement: ast.Statement) -> str:
    """Render any supported statement as SQL text."""
    if isinstance(statement, ast.SelectStatement):
        return format_query(statement.query)
    if isinstance(statement, ast.CreateTable):
        column_parts = []
        for column in statement.columns:
            text = f"{format_identifier(column.name)} {column.type_name}"
            if column.not_null:
                text += " NOT NULL"
            column_parts.append(text)
        if statement.primary_key:
            keys = ", ".join(format_identifier(k) for k in statement.primary_key)
            column_parts.append(f"PRIMARY KEY ({keys})")
        if_not_exists = "IF NOT EXISTS " if statement.if_not_exists else ""
        return (
            f"CREATE TABLE {if_not_exists}{format_identifier(statement.name)} "
            f"({', '.join(column_parts)})"
        )
    if isinstance(statement, ast.DropTable):
        if_exists = "IF EXISTS " if statement.if_exists else ""
        return f"DROP TABLE {if_exists}{format_identifier(statement.name)}"
    if isinstance(statement, ast.CreateIndex):
        if_not_exists = "IF NOT EXISTS " if statement.if_not_exists else ""
        columns = ", ".join(format_identifier(c) for c in statement.columns)
        return (
            f"CREATE INDEX {if_not_exists}{format_identifier(statement.name)}"
            f" ON {format_identifier(statement.table)} ({columns})"
        )
    if isinstance(statement, ast.Insert):
        columns = ""
        if statement.columns:
            columns = f" ({', '.join(format_identifier(c) for c in statement.columns)})"
        rows = ", ".join(
            "(" + ", ".join(format_expression(value) for value in row) + ")"
            for row in statement.rows
        )
        return (
            f"INSERT INTO {format_identifier(statement.table)}{columns}"
            f" VALUES {rows}"
        )
    if isinstance(statement, ast.Delete):
        where = (
            f" WHERE {format_expression(statement.where)}"
            if statement.where is not None
            else ""
        )
        return f"DELETE FROM {format_identifier(statement.table)}{where}"
    if isinstance(statement, ast.Update):
        assignments = ", ".join(
            f"{format_identifier(column)} = {format_expression(value)}"
            for column, value in statement.assignments
        )
        where = (
            f" WHERE {format_expression(statement.where)}"
            if statement.where is not None
            else ""
        )
        return f"UPDATE {format_identifier(statement.table)} SET {assignments}{where}"
    raise TypeError(f"cannot format statement {type(statement).__name__}")
