"""Render SQL ASTs back to SQL text.

Used to display the output of the query-rewriting baseline (which builds
``NOT EXISTS`` residues as ASTs), to round-trip queries in tests, and to
show envelope queries in the examples -- mirroring how Hippo hands the
envelope to the RDBMS as SQL.

Every rendering function accepts a ``literals`` hook that maps a literal
value to its textual form.  The default inlines SQL literals
(:func:`~repro.engine.types.literal_sql`); the parameterized renderer in
:mod:`repro.ra.to_sql` passes a collector that emits a placeholder and
records the value instead, which is how pushdown backends receive SQL
with bound arguments rather than interpolated text.  Literals are always
rendered in left-to-right textual order, so the collected parameter
sequence lines up with the placeholders.
"""

from __future__ import annotations

from typing import Callable, Union

from repro.engine.types import SQLValue, literal_sql
from repro.sql import ast

#: A literal-rendering hook: value -> SQL fragment (text or placeholder).
LiteralRenderer = Callable[[SQLValue], str]

_IDENT_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def format_identifier(name: str) -> str:
    """Quote an identifier only when necessary."""
    from repro.sql.lexer import KEYWORDS

    if name and all(ch in _IDENT_SAFE for ch in name) and not name[0].isdigit():
        if name.upper() not in KEYWORDS:
            return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def format_expression(
    expr: ast.Expression, literals: LiteralRenderer = literal_sql
) -> str:
    """Render an expression (fully parenthesized where precedence matters)."""
    if isinstance(expr, ast.Literal):
        return literals(expr.value)
    if isinstance(expr, ast.ColumnRef):
        column = format_identifier(expr.name)
        if expr.table:
            return f"{format_identifier(expr.table)}.{column}"
        return column
    if isinstance(expr, ast.BinaryOp):
        left = format_expression(expr.left, literals)
        right = format_expression(expr.right, literals)
        if expr.op in ("AND", "OR"):
            return f"({left} {expr.op} {right})"
        return f"({left} {expr.op} {right})"
    if isinstance(expr, ast.UnaryOp):
        operand = format_expression(expr.operand, literals)
        if expr.op == "NOT":
            return f"(NOT {operand})"
        return f"({expr.op}{operand})"
    if isinstance(expr, ast.FunctionCall):
        if expr.star:
            return f"{expr.name}(*)"
        args = ", ".join(format_expression(arg, literals) for arg in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, ast.IsNull):
        not_part = " NOT" if expr.negated else ""
        return f"({format_expression(expr.operand, literals)} IS{not_part} NULL)"
    if isinstance(expr, ast.InList):
        # Operand renders before the list so collected parameters stay in
        # textual order.
        operand = format_expression(expr.operand, literals)
        items = ", ".join(format_expression(item, literals) for item in expr.items)
        not_part = "NOT " if expr.negated else ""
        return f"({operand} {not_part}IN ({items}))"
    if isinstance(expr, ast.Between):
        not_part = "NOT " if expr.negated else ""
        operand = format_expression(expr.operand, literals)
        low = format_expression(expr.low, literals)
        high = format_expression(expr.high, literals)
        return f"({operand} {not_part}BETWEEN {low} AND {high})"
    if isinstance(expr, ast.Like):
        not_part = "NOT " if expr.negated else ""
        operand = format_expression(expr.operand, literals)
        pattern = format_expression(expr.pattern, literals)
        return f"({operand} {not_part}LIKE {pattern})"
    if isinstance(expr, ast.Exists):
        not_part = "NOT " if expr.negated else ""
        return f"({not_part}EXISTS ({format_query(expr.query, literals)}))"
    if isinstance(expr, ast.InSubquery):
        not_part = "NOT " if expr.negated else ""
        operand = format_expression(expr.operand, literals)
        return f"({operand} {not_part}IN ({format_query(expr.query, literals)}))"
    if isinstance(expr, ast.Case):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(format_expression(expr.operand, literals))
        for condition, result in expr.whens:
            when = format_expression(condition, literals)
            then = format_expression(result, literals)
            parts.append(f"WHEN {when} THEN {then}")
        if expr.else_ is not None:
            parts.append(f"ELSE {format_expression(expr.else_, literals)}")
        parts.append("END")
        return " ".join(parts)
    raise TypeError(f"cannot format expression node {type(expr).__name__}")


def _format_from_item(
    item: ast.FromItem, literals: LiteralRenderer = literal_sql
) -> str:
    if isinstance(item, ast.TableRef):
        text = format_identifier(item.name)
        if item.alias:
            text += f" AS {format_identifier(item.alias)}"
        return text
    if isinstance(item, ast.DerivedTable):
        query = format_query(item.query, literals)
        return f"({query}) AS {format_identifier(item.alias)}"
    if isinstance(item, ast.Join):
        left = _format_from_item(item.left, literals)
        right = _format_from_item(item.right, literals)
        if item.kind == "cross":
            return f"{left} CROSS JOIN {right}"
        keyword = {"inner": "JOIN", "left": "LEFT JOIN"}[item.kind]
        on = (
            f" ON {format_expression(item.on, literals)}"
            if item.on is not None
            else ""
        )
        return f"{left} {keyword} {right}{on}"
    raise TypeError(f"cannot format FROM item {type(item).__name__}")


def _format_core(
    core: ast.SelectCore, literals: LiteralRenderer = literal_sql
) -> str:
    items = []
    for item in core.items:
        if isinstance(item, ast.Star):
            items.append(f"{format_identifier(item.table)}.*" if item.table else "*")
        else:
            rendered = format_expression(item.expr, literals)
            if item.alias:
                rendered += f" AS {format_identifier(item.alias)}"
            items.append(rendered)
    parts = ["SELECT"]
    if core.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(items))
    if core.from_items:
        parts.append("FROM")
        parts.append(
            ", ".join(
                _format_from_item(item, literals) for item in core.from_items
            )
        )
    if core.where is not None:
        parts.append(f"WHERE {format_expression(core.where, literals)}")
    if core.group_by:
        keys = ", ".join(format_expression(key, literals) for key in core.group_by)
        parts.append(f"GROUP BY {keys}")
    if core.having is not None:
        parts.append(f"HAVING {format_expression(core.having, literals)}")
    return " ".join(parts)


def _format_body(
    body: Union[ast.SelectCore, ast.SetOperation],
    literals: LiteralRenderer = literal_sql,
) -> str:
    if isinstance(body, ast.SelectCore):
        return _format_core(body, literals)
    op = body.op.upper() + (" ALL" if body.all else "")
    left = _format_body(body.left, literals)
    # Left-associative chains render bare: UNION/EXCEPT share one
    # precedence level and INTERSECT binds tighter in every dialect we
    # target, so parentheses are needed only where bare text would parse
    # differently -- a UNION/EXCEPT under INTERSECT, or any compound as
    # the right operand.  (SQLite rejects parenthesized compound
    # operands outright; pushdown then falls back to the native engine
    # rather than risk a silent re-association.)
    if (
        body.op == "intersect"
        and isinstance(body.left, ast.SetOperation)
        and body.left.op != "intersect"
    ):
        left = f"({left})"
    right = _format_body(body.right, literals)
    if isinstance(body.right, ast.SetOperation):
        right = f"({right})"
    return f"{left} {op} {right}"


def format_query(
    query: ast.Query, literals: LiteralRenderer = literal_sql
) -> str:
    """Render a :class:`~repro.sql.ast.Query` as SQL text."""
    parts = [_format_body(query.body, literals)]
    if query.order_by:
        keys = ", ".join(
            format_expression(item.expr, literals)
            + ("" if item.ascending else " DESC")
            for item in query.order_by
        )
        parts.append(f"ORDER BY {keys}")
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    if query.offset is not None:
        parts.append(f"OFFSET {query.offset}")
    return " ".join(parts)


def format_statement(
    statement: ast.Statement, literals: LiteralRenderer = literal_sql
) -> str:
    """Render any supported statement as SQL text."""
    if isinstance(statement, ast.SelectStatement):
        return format_query(statement.query, literals)
    if isinstance(statement, ast.CreateTable):
        column_parts = []
        for column in statement.columns:
            text = f"{format_identifier(column.name)} {column.type_name}"
            if column.not_null:
                text += " NOT NULL"
            column_parts.append(text)
        if statement.primary_key:
            keys = ", ".join(format_identifier(k) for k in statement.primary_key)
            column_parts.append(f"PRIMARY KEY ({keys})")
        if_not_exists = "IF NOT EXISTS " if statement.if_not_exists else ""
        return (
            f"CREATE TABLE {if_not_exists}{format_identifier(statement.name)} "
            f"({', '.join(column_parts)})"
        )
    if isinstance(statement, ast.DropTable):
        if_exists = "IF EXISTS " if statement.if_exists else ""
        return f"DROP TABLE {if_exists}{format_identifier(statement.name)}"
    if isinstance(statement, ast.CreateIndex):
        if_not_exists = "IF NOT EXISTS " if statement.if_not_exists else ""
        columns = ", ".join(format_identifier(c) for c in statement.columns)
        return (
            f"CREATE INDEX {if_not_exists}{format_identifier(statement.name)}"
            f" ON {format_identifier(statement.table)} ({columns})"
        )
    if isinstance(statement, ast.Insert):
        columns = ""
        if statement.columns:
            columns = f" ({', '.join(format_identifier(c) for c in statement.columns)})"
        rows = ", ".join(
            "("
            + ", ".join(format_expression(value, literals) for value in row)
            + ")"
            for row in statement.rows
        )
        return (
            f"INSERT INTO {format_identifier(statement.table)}{columns}"
            f" VALUES {rows}"
        )
    if isinstance(statement, ast.Delete):
        where = (
            f" WHERE {format_expression(statement.where, literals)}"
            if statement.where is not None
            else ""
        )
        return f"DELETE FROM {format_identifier(statement.table)}{where}"
    if isinstance(statement, ast.Update):
        assignments = ", ".join(
            f"{format_identifier(column)} = {format_expression(value, literals)}"
            for column, value in statement.assignments
        )
        where = (
            f" WHERE {format_expression(statement.where, literals)}"
            if statement.where is not None
            else ""
        )
        return f"UPDATE {format_identifier(statement.table)} SET {assignments}{where}"
    raise TypeError(f"cannot format statement {type(statement).__name__}")
