"""Recursive-descent parser for the SQL dialect.

The entry points are :func:`parse_statement` (one statement),
:func:`parse_script` (a ``;``-separated list) and :func:`parse_expression`
(a bare scalar expression -- used by the constraint parser).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import Token, tokenize


def parse_statement(text: str) -> ast.Statement:
    """Parse a single SQL statement (a trailing ``;`` is allowed)."""
    parser = _Parser(tokenize(text))
    statement = parser.statement()
    parser.accept("punct", ";")
    parser.expect_eof()
    return statement


def parse_script(text: str) -> list[ast.Statement]:
    """Parse a ``;``-separated sequence of statements."""
    parser = _Parser(tokenize(text))
    statements: list[ast.Statement] = []
    while not parser.at_eof():
        statements.append(parser.statement())
        if not parser.accept("punct", ";") and not parser.at_eof():
            parser.fail("expected ';' between statements")
    return statements


def parse_query(text: str) -> ast.Query:
    """Parse a query (SELECT / set operation), rejecting other statements."""
    statement = parse_statement(text)
    if not isinstance(statement, ast.SelectStatement):
        raise ParseError("expected a SELECT query")
    return statement.query


def parse_expression(text: str) -> ast.Expression:
    """Parse a bare scalar expression."""
    parser = _Parser(tokenize(text))
    expr = parser.expression()
    parser.expect_eof()
    return expr


class _Parser:
    """Token-stream wrapper with the usual recursive-descent helpers."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ----------------------------------------------------------- utilities

    def peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def accept(self, kind: str, value: Optional[object] = None) -> Optional[Token]:
        if self.peek().matches(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[object] = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            self.fail(f"expected {value or kind}")
        return token

    def accept_keyword(self, *words: str) -> Optional[str]:
        token = self.peek()
        if token.kind == "keyword" and token.value in words:
            self.advance()
            return str(token.value)
        return None

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            self.fail(f"expected {word}")

    def at_eof(self) -> bool:
        return self.peek().kind == "eof"

    def expect_eof(self) -> None:
        if not self.at_eof():
            self.fail("unexpected trailing input")

    def fail(self, message: str) -> None:
        token = self.peek()
        raise ParseError(f"{message}, found {token.value!r} at offset {token.position}")

    def identifier(self, what: str = "identifier") -> str:
        token = self.accept("ident")
        if token is None:
            self.fail(f"expected {what}")
        return str(token.value)

    # ---------------------------------------------------------- statements

    def statement(self) -> ast.Statement:
        token = self.peek()
        if token.matches("punct", "("):
            return ast.SelectStatement(self.query())
        if token.kind != "keyword":
            self.fail("expected a statement")
        keyword = token.value
        if keyword == "CREATE":
            return self.create_statement()
        if keyword == "DROP":
            return self.drop_table()
        if keyword == "INSERT":
            return self.insert()
        if keyword == "DELETE":
            return self.delete()
        if keyword == "UPDATE":
            return self.update()
        if keyword == "SELECT":
            return ast.SelectStatement(self.query())
        self.fail("expected a statement")
        raise AssertionError("unreachable")

    def create_statement(self) -> ast.Statement:
        after_create = self.peek(1)
        if after_create.kind == "ident" and str(after_create.value).upper() == "INDEX":
            return self.create_index()
        return self.create_table()

    def create_index(self) -> ast.CreateIndex:
        self.expect_keyword("CREATE")
        index_word = self.identifier("INDEX")
        if index_word.upper() != "INDEX":
            self.fail("expected INDEX")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.identifier("index name")
        self.expect_keyword("ON")
        table = self.identifier("table name")
        self.expect("punct", "(")
        columns = [self.identifier("column name")]
        while self.accept("punct", ","):
            columns.append(self.identifier("column name"))
        self.expect("punct", ")")
        return ast.CreateIndex(name, table, tuple(columns), if_not_exists)

    def create_table(self) -> ast.CreateTable:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.identifier("table name")
        self.expect("punct", "(")
        columns: list[ast.ColumnDef] = []
        table_pk: tuple[str, ...] = ()
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                self.expect("punct", "(")
                names = [self.identifier("column name")]
                while self.accept("punct", ","):
                    names.append(self.identifier("column name"))
                self.expect("punct", ")")
                table_pk = tuple(names)
            else:
                columns.append(self.column_def())
            if not self.accept("punct", ","):
                break
        self.expect("punct", ")")
        inline_pk = tuple(col.name for col in columns if col.primary_key)
        if table_pk and inline_pk:
            raise ParseError("PRIMARY KEY declared both inline and at table level")
        return ast.CreateTable(
            name, tuple(columns), table_pk or inline_pk, if_not_exists
        )

    def column_def(self) -> ast.ColumnDef:
        name = self.identifier("column name")
        type_token = self.accept("ident") or self.accept("keyword")
        if type_token is None:
            self.fail("expected a column type")
        not_null = False
        primary_key = False
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                not_null = True
            elif self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                primary_key = True
            else:
                break
        return ast.ColumnDef(name, str(type_token.value), not_null, primary_key)

    def drop_table(self) -> ast.DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return ast.DropTable(self.identifier("table name"), if_exists)

    def insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.identifier("table name")
        columns: tuple[str, ...] = ()
        if self.accept("punct", "("):
            names = [self.identifier("column name")]
            while self.accept("punct", ","):
                names.append(self.identifier("column name"))
            self.expect("punct", ")")
            columns = tuple(names)
        self.expect_keyword("VALUES")
        rows: list[tuple[ast.Expression, ...]] = []
        while True:
            self.expect("punct", "(")
            values = [self.expression()]
            while self.accept("punct", ","):
                values.append(self.expression())
            self.expect("punct", ")")
            rows.append(tuple(values))
            if not self.accept("punct", ","):
                break
        return ast.Insert(table, columns, tuple(rows))

    def delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.identifier("table name")
        where = self.expression() if self.accept_keyword("WHERE") else None
        return ast.Delete(table, where)

    def update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.identifier("table name")
        self.expect_keyword("SET")
        assignments: list[tuple[str, ast.Expression]] = []
        while True:
            column = self.identifier("column name")
            self.expect("op", "=")
            assignments.append((column, self.expression()))
            if not self.accept("punct", ","):
                break
        where = self.expression() if self.accept_keyword("WHERE") else None
        return ast.Update(table, tuple(assignments), where)

    # -------------------------------------------------------------- queries

    def query(self) -> ast.Query:
        body = self.select_body()
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expr = self.expression()
                ascending = True
                if self.accept_keyword("DESC"):
                    ascending = False
                else:
                    self.accept_keyword("ASC")
                order_by.append(ast.OrderItem(expr, ascending))
                if not self.accept("punct", ","):
                    break
        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = self._int_literal("LIMIT")
            if self.accept_keyword("OFFSET"):
                offset = self._int_literal("OFFSET")
        return ast.Query(body, tuple(order_by), limit, offset)

    def _int_literal(self, clause: str) -> int:
        token = self.accept("int")
        if token is None:
            self.fail(f"expected an integer after {clause}")
        return int(token.value)  # type: ignore[arg-type]

    def select_body(self) -> Union[ast.SelectCore, ast.SetOperation]:
        left = self._intersect_term()
        while True:
            op = self.accept_keyword("UNION", "EXCEPT")
            if op is None:
                return left
            all_flag = bool(self.accept_keyword("ALL"))
            right = self._intersect_term()
            left = ast.SetOperation(op.lower(), left, right, all_flag)

    def _intersect_term(self) -> Union[ast.SelectCore, ast.SetOperation]:
        left = self._select_primary()
        while self.accept_keyword("INTERSECT"):
            all_flag = bool(self.accept_keyword("ALL"))
            right = self._select_primary()
            left = ast.SetOperation("intersect", left, right, all_flag)
        return left

    def _select_primary(self) -> Union[ast.SelectCore, ast.SetOperation]:
        if self.accept("punct", "("):
            body = self.select_body()
            self.expect("punct", ")")
            return body
        return self.select_core()

    def select_core(self) -> ast.SelectCore:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        if not distinct:
            self.accept_keyword("ALL")
        items: list[Union[ast.SelectItem, ast.Star]] = [self.select_item()]
        while self.accept("punct", ","):
            items.append(self.select_item())
        from_items: tuple[ast.FromItem, ...] = ()
        if self.accept_keyword("FROM"):
            parts = [self.from_item()]
            while self.accept("punct", ","):
                parts.append(self.from_item())
            from_items = tuple(parts)
        where = self.expression() if self.accept_keyword("WHERE") else None
        group_by: tuple[ast.Expression, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            keys = [self.expression()]
            while self.accept("punct", ","):
                keys.append(self.expression())
            group_by = tuple(keys)
        having = self.expression() if self.accept_keyword("HAVING") else None
        return ast.SelectCore(
            tuple(items), from_items, where, group_by, having, distinct
        )

    def select_item(self) -> Union[ast.SelectItem, ast.Star]:
        if self.peek().matches("op", "*"):
            self.advance()
            return ast.Star(None)
        if (
            self.peek().kind == "ident"
            and self.peek(1).matches("punct", ".")
            and self.peek(2).matches("op", "*")
        ):
            table = self.identifier()
            self.advance()  # '.'
            self.advance()  # '*'
            return ast.Star(table)
        expr = self.expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.identifier("alias")
        elif self.peek().kind == "ident":
            alias = self.identifier()
        return ast.SelectItem(expr, alias)

    def from_item(self) -> ast.FromItem:
        left = self._from_primary()
        while True:
            kind = None
            if self.accept_keyword("CROSS"):
                kind = "cross"
            elif self.accept_keyword("INNER"):
                kind = "inner"
            elif self.accept_keyword("LEFT"):
                self.accept_keyword("OUTER")
                kind = "left"
            elif self.peek().matches("keyword", "JOIN"):
                kind = "inner"
            if kind is None:
                return left
            self.expect_keyword("JOIN")
            right = self._from_primary()
            on = None
            if kind != "cross":
                self.expect_keyword("ON")
                on = self.expression()
            left = ast.Join(left, right, kind, on)

    def _from_primary(self) -> ast.FromItem:
        if self.accept("punct", "("):
            query = self.query()
            self.expect("punct", ")")
            self.accept_keyword("AS")
            alias = self.identifier("derived-table alias")
            return ast.DerivedTable(query, alias)
        name = self.identifier("table name")
        alias = None
        if self.accept_keyword("AS"):
            alias = self.identifier("alias")
        elif self.peek().kind == "ident":
            alias = self.identifier()
        return ast.TableRef(name, alias)

    # ---------------------------------------------------------- expressions

    def expression(self) -> ast.Expression:
        return self._or_expr()

    def _or_expr(self) -> ast.Expression:
        left = self._and_expr()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expression:
        left = self._not_expr()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expression:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expression:
        left = self._additive()
        token = self.peek()
        if token.kind == "op" and token.value in ("=", "<>", "<", "<=", ">", ">="):
            self.advance()
            return ast.BinaryOp(str(token.value), left, self._additive())
        negated = bool(self.accept_keyword("NOT"))
        if self.accept_keyword("IS"):
            if negated:
                self.fail("NOT before IS is not valid; use IS NOT NULL")
            is_negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return ast.IsNull(left, is_negated)
        if self.accept_keyword("IN"):
            return self._in_tail(left, negated)
        if self.accept_keyword("LIKE"):
            return ast.Like(left, self._additive(), negated)
        if self.accept_keyword("BETWEEN"):
            low = self._additive()
            self.expect_keyword("AND")
            high = self._additive()
            return ast.Between(left, low, high, negated)
        if negated:
            self.fail("expected IN, LIKE or BETWEEN after NOT")
        return left

    def _in_tail(self, operand: ast.Expression, negated: bool) -> ast.Expression:
        self.expect("punct", "(")
        if self.peek().matches("keyword", "SELECT") or self.peek().matches(
            "punct", "("
        ):
            query = self.query()
            self.expect("punct", ")")
            return ast.InSubquery(operand, query, negated)
        items = [self.expression()]
        while self.accept("punct", ","):
            items.append(self.expression())
        self.expect("punct", ")")
        return ast.InList(operand, tuple(items), negated)

    def _additive(self) -> ast.Expression:
        left = self._multiplicative()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("+", "-", "||"):
                self.advance()
                left = ast.BinaryOp(str(token.value), left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expression:
        left = self._unary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("*", "/", "%"):
                self.advance()
                left = ast.BinaryOp(str(token.value), left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expression:
        token = self.peek()
        if token.kind == "op" and token.value in ("-", "+"):
            self.advance()
            return ast.UnaryOp(str(token.value), self._unary())
        return self._primary()

    def _primary(self) -> ast.Expression:
        token = self.peek()
        if token.kind in ("int", "float", "string"):
            self.advance()
            return ast.Literal(token.value)
        if token.matches("keyword", "NULL"):
            self.advance()
            return ast.Literal(None)
        if token.matches("keyword", "TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.matches("keyword", "FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.matches("keyword", "EXISTS"):
            self.advance()
            self.expect("punct", "(")
            query = self.query()
            self.expect("punct", ")")
            return ast.Exists(query)
        if token.matches("keyword", "CASE"):
            return self._case()
        if token.matches("punct", "("):
            self.advance()
            expr = self.expression()
            self.expect("punct", ")")
            return expr
        if token.kind == "ident":
            return self._identifier_expr()
        self.fail("expected an expression")
        raise AssertionError("unreachable")

    def _case(self) -> ast.Expression:
        self.expect_keyword("CASE")
        operand = None
        if not self.peek().matches("keyword", "WHEN"):
            operand = self.expression()
        whens: list[tuple[ast.Expression, ast.Expression]] = []
        while self.accept_keyword("WHEN"):
            condition = self.expression()
            self.expect_keyword("THEN")
            whens.append((condition, self.expression()))
        if not whens:
            self.fail("CASE requires at least one WHEN")
        else_ = self.expression() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        return ast.Case(operand, tuple(whens), else_)

    def _identifier_expr(self) -> ast.Expression:
        name = self.identifier()
        if self.peek().matches("punct", "("):
            return self._function_call(name)
        if self.accept("punct", "."):
            column = self.identifier("column name")
            return ast.ColumnRef(name, column)
        return ast.ColumnRef(None, name)

    def _function_call(self, name: str) -> ast.Expression:
        self.expect("punct", "(")
        if self.peek().matches("op", "*"):
            self.advance()
            self.expect("punct", ")")
            return ast.FunctionCall(name.upper(), (), False, star=True)
        if self.accept("punct", ")"):
            return ast.FunctionCall(name.upper(), ())
        distinct = bool(self.accept_keyword("DISTINCT"))
        args = [self.expression()]
        while self.accept("punct", ","):
            args.append(self.expression())
        self.expect("punct", ")")
        return ast.FunctionCall(name.upper(), tuple(args), distinct)
