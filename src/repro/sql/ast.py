"""Abstract syntax trees for the SQL dialect.

The same expression nodes are used by three layers:

* the SQL parser produces them,
* the relational-algebra layer embeds them as selection conditions, and
* the engine's expression compiler turns them into evaluators.

All nodes are dataclasses with structural equality, which the planner
relies on to match GROUP BY expressions and to deduplicate aggregate
calls, and which the CQA grounding step relies on to compare conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.engine.types import SQLValue


class Node:
    """Marker base class for all AST nodes."""


class Expression(Node):
    """Marker base class for scalar expressions."""


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, boolean or NULL."""

    value: SQLValue


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A (possibly qualified) column reference, e.g. ``r.a`` or ``a``."""

    table: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operator application.

    ``op`` is one of: ``= <> < <= > >= + - * / % || AND OR``.
    """

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryOp(Expression):
    """A unary operator application; ``op`` is ``NOT`` or ``-`` or ``+``."""

    op: str
    operand: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A function call; covers both scalar and aggregate functions.

    ``star`` marks ``COUNT(*)``.
    """

    name: str
    args: tuple[Expression, ...] = ()
    distinct: bool = False
    star: bool = False


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (item, ...)``."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` (pattern must be a string expression)."""

    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass(frozen=True)
class Exists(Expression):
    """``[NOT] EXISTS (subquery)``; the workhorse of the rewriting baseline."""

    query: "Query"
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expression):
    """``expr [NOT] IN (subquery)``."""

    operand: Expression
    query: "Query"
    negated: bool = False


@dataclass(frozen=True)
class Case(Expression):
    """``CASE [operand] WHEN .. THEN .. [ELSE ..] END``."""

    operand: Optional[Expression]
    whens: tuple[tuple[Expression, Expression], ...]
    else_: Optional[Expression] = None


# --------------------------------------------------------------------------
# FROM clause
# --------------------------------------------------------------------------


class FromItem(Node):
    """Marker base class for FROM-clause items."""


@dataclass(frozen=True)
class TableRef(FromItem):
    """A base-table reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this table is visible under in the query scope."""
        return self.alias or self.name


@dataclass(frozen=True)
class DerivedTable(FromItem):
    """A subquery in FROM: ``(SELECT ...) alias``."""

    query: "Query"
    alias: str


@dataclass(frozen=True)
class Join(FromItem):
    """An explicit join.  ``kind`` is ``inner``, ``cross`` or ``left``."""

    left: FromItem
    right: FromItem
    kind: str = "inner"
    on: Optional[Expression] = None


# --------------------------------------------------------------------------
# SELECT
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(Node):
    """One item of the select list: an expression with an optional alias."""

    expr: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class Star(Node):
    """``*`` or ``alias.*`` in a select list."""

    table: Optional[str] = None


@dataclass(frozen=True)
class SelectCore(Node):
    """A single SELECT block (no set operations, ORDER BY or LIMIT)."""

    items: tuple[Union[SelectItem, Star], ...]
    from_items: tuple[FromItem, ...] = ()
    where: Optional[Expression] = None
    group_by: tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    distinct: bool = False


@dataclass(frozen=True)
class SetOperation(Node):
    """``left UNION [ALL] | EXCEPT | INTERSECT right``."""

    op: str  # 'union' | 'except' | 'intersect'
    left: Union[SelectCore, "SetOperation"]
    right: Union[SelectCore, "SetOperation"]
    all: bool = False


@dataclass(frozen=True)
class OrderItem(Node):
    """One ORDER BY key."""

    expr: Expression
    ascending: bool = True


@dataclass(frozen=True)
class Query(Node):
    """A full query: body plus ORDER BY / LIMIT / OFFSET."""

    body: Union[SelectCore, SetOperation]
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None


# --------------------------------------------------------------------------
# DDL / DML statements
# --------------------------------------------------------------------------


class Statement(Node):
    """Marker base class for executable statements."""


@dataclass(frozen=True)
class ColumnDef(Node):
    """A column definition inside CREATE TABLE."""

    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTable(Statement):
    """``CREATE TABLE name (...)``."""

    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: tuple[str, ...] = ()
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable(Statement):
    """``DROP TABLE [IF EXISTS] name``."""

    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class CreateIndex(Statement):
    """``CREATE INDEX name ON table (col, ...)``."""

    name: str
    table: str
    columns: tuple[str, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO name [(cols)] VALUES (...), (...)``."""

    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expression, ...], ...]


@dataclass(frozen=True)
class Delete(Statement):
    """``DELETE FROM name [WHERE ...]``."""

    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE name SET col = expr, ... [WHERE ...]``."""

    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class SelectStatement(Statement):
    """A top-level query statement."""

    query: Query


# --------------------------------------------------------------------------
# Small helpers used across the code base
# --------------------------------------------------------------------------


def conjunction(conjuncts: Sequence[Expression]) -> Optional[Expression]:
    """AND together a sequence of expressions (None for an empty sequence)."""
    result: Optional[Expression] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("AND", result, conjunct)
    return result


def split_conjuncts(expr: Optional[Expression]) -> list[Expression]:
    """Split an expression into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def disjunction(disjuncts: Sequence[Expression]) -> Optional[Expression]:
    """OR together a sequence of expressions (None for an empty sequence)."""
    result: Optional[Expression] = None
    for disjunct in disjuncts:
        result = disjunct if result is None else BinaryOp("OR", result, disjunct)
    return result
