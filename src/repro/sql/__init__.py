"""SQL frontend: lexer, parser, AST and formatter."""

from repro.sql.formatter import format_expression, format_query, format_statement
from repro.sql.parser import (
    parse_expression,
    parse_query,
    parse_script,
    parse_statement,
)

__all__ = [
    "format_expression",
    "format_query",
    "format_statement",
    "parse_expression",
    "parse_query",
    "parse_script",
    "parse_statement",
]
