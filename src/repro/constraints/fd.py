"""Functional dependencies and key constraints, as denial constraints.

An FD ``R: X -> Y`` compiles to one denial constraint per dependent
attribute ``A in Y``:

    NOT ( R(t1) AND R(t2) AND t1.X = t2.X AND t1.A <> t2.A )

so a violation is always a *pair* of tuples -- the conflict hypergraph for
FDs is an ordinary graph, matching the theory in Arenas et al. (TCS 2003)
and Chomicki & Marcinkowski (2005).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.constraints.denial import ConstraintAtom, DenialConstraint
from repro.errors import ConstraintError
from repro.sql import ast

if TYPE_CHECKING:
    from repro.engine.database import Database


@dataclass(frozen=True)
class FunctionalDependency:
    """``relation: lhs -> rhs``.

    Attributes:
        relation: the constrained relation.
        lhs: determinant attributes (must be non-empty).
        rhs: dependent attributes (must be non-empty, disjoint from lhs).
    """

    relation: str
    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def __init__(self, relation: str, lhs: Sequence[str], rhs: Sequence[str]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "lhs", tuple(lhs))
        object.__setattr__(self, "rhs", tuple(rhs))
        if not self.lhs:
            raise ConstraintError("functional dependency needs a non-empty LHS")
        if not self.rhs:
            raise ConstraintError("functional dependency needs a non-empty RHS")
        lhs_lower = {a.lower() for a in self.lhs}
        rhs_lower = {a.lower() for a in self.rhs}
        if lhs_lower & rhs_lower:
            raise ConstraintError(
                f"FD on {relation!r}: attributes {sorted(lhs_lower & rhs_lower)}"
                " appear on both sides"
            )

    def to_denials(self) -> list[DenialConstraint]:
        """One binary denial constraint per dependent attribute."""
        atoms = (
            ConstraintAtom("t1", self.relation),
            ConstraintAtom("t2", self.relation),
        )
        constraints = []
        for dependent in self.rhs:
            conjuncts: list[ast.Expression] = [
                ast.BinaryOp(
                    "=",
                    ast.ColumnRef("t1", determinant),
                    ast.ColumnRef("t2", determinant),
                )
                for determinant in self.lhs
            ]
            conjuncts.append(
                ast.BinaryOp(
                    "<>",
                    ast.ColumnRef("t1", dependent),
                    ast.ColumnRef("t2", dependent),
                )
            )
            name = f"fd:{self.relation}:{','.join(self.lhs)}->{dependent}"
            constraints.append(
                DenialConstraint(name, atoms, ast.conjunction(conjuncts))
            )
        return constraints

    def __str__(self) -> str:
        return f"FD {self.relation}: {', '.join(self.lhs)} -> {', '.join(self.rhs)}"


def key_constraint(
    relation: str, key: Sequence[str], columns: Sequence[str]
) -> FunctionalDependency:
    """A key constraint: the key determines every non-key column.

    Args:
        relation: the constrained relation.
        key: the key attributes.
        columns: all column names of the relation (the RHS is computed as
            ``columns - key``).

    Raises:
        ConstraintError: if the key covers every column (nothing to check).
    """
    key_lower = {k.lower() for k in key}
    rhs = [c for c in columns if c.lower() not in key_lower]
    if not rhs:
        raise ConstraintError(
            f"key {tuple(key)} of {relation!r} covers all columns;"
            " a trivial key cannot be violated by deletions"
        )
    return FunctionalDependency(relation, list(key), rhs)


def primary_key_fd(db: Database, relation: str) -> FunctionalDependency:
    """Derive the key FD from a table's declared PRIMARY KEY.

    Raises:
        ConstraintError: if the table has no primary key.
    """
    schema = db.catalog.table(relation).schema
    if not schema.primary_key:
        raise ConstraintError(f"table {relation!r} declares no PRIMARY KEY")
    return key_constraint(relation, schema.primary_key, schema.column_names)
