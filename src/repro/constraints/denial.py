"""Denial constraints: the constraint class Hippo supports.

A denial constraint forbids a combination of tuples:

    forall t1..tk:  NOT ( R1(t1) AND ... AND Rk(tk) AND phi(t1..tk) )

where ``phi`` is a quantifier-free condition over the tuple variables.
Functional dependencies and exclusion constraints are special cases (see
:mod:`repro.constraints.fd` and :mod:`repro.constraints.exclusion`).

A *violation* is a set of tuples jointly satisfying the body; violations
become the hyperedges of the conflict hypergraph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import ConstraintError
from repro.sql import ast
from repro.sql.formatter import format_expression


@dataclass(frozen=True)
class ConstraintAtom:
    """One tuple variable of a denial constraint's body."""

    alias: str
    relation: str


@dataclass(frozen=True)
class DenialConstraint:
    """A denial constraint ``NOT (atoms AND condition)``.

    Attributes:
        name: label used in diagnostics and statistics.
        atoms: the tuple variables (relation occurrences).
        condition: quantifier-free condition over ``ColumnRef(alias, col)``
            references; ``None`` means *true* (any combination violates --
            useful only for degenerate test cases).
    """

    name: str
    atoms: tuple[ConstraintAtom, ...]
    condition: Optional[ast.Expression] = None

    def __post_init__(self) -> None:
        if not self.atoms:
            raise ConstraintError(f"constraint {self.name!r} has no atoms")
        seen = set()
        for atom in self.atoms:
            lowered = atom.alias.lower()
            if lowered in seen:
                raise ConstraintError(
                    f"constraint {self.name!r} repeats alias {atom.alias!r}"
                )
            seen.add(lowered)
        if self.condition is not None:
            self._validate_refs(self.condition, seen)

    def _validate_refs(self, expr: ast.Expression, aliases: set[str]) -> None:
        from repro.engine.planner import column_refs

        for ref in column_refs(expr):
            if ref.table is None:
                raise ConstraintError(
                    f"constraint {self.name!r}: reference {ref} must be"
                    " qualified with a tuple-variable alias"
                )
            if ref.table.lower() not in aliases:
                raise ConstraintError(
                    f"constraint {self.name!r}: unknown tuple variable"
                    f" {ref.table!r} in {ref}"
                )

    @property
    def arity(self) -> int:
        """Number of tuple variables in the body."""
        return len(self.atoms)

    @property
    def is_binary(self) -> bool:
        """Whether the constraint relates exactly two tuples.

        The PODS'99 query-rewriting baseline applies only to binary
        ("universal binary") constraints; Hippo has no such restriction.
        """
        return self.arity == 2

    def relations(self) -> frozenset[str]:
        """The (lower-cased) relation names mentioned by the body."""
        return frozenset(atom.relation.lower() for atom in self.atoms)

    def __str__(self) -> str:
        body = " AND ".join(f"{a.relation} AS {a.alias}" for a in self.atoms)
        if self.condition is not None:
            body += f" WHERE {format_expression(self.condition)}"
        return f"DENIAL {self.name}: NOT({body})"


def to_denial_constraints(
    constraints: Iterable[object],
) -> list[DenialConstraint]:
    """Normalize a mixed list of constraints to denial constraints.

    Accepts :class:`DenialConstraint` instances directly and anything
    exposing a ``to_denials() -> Sequence[DenialConstraint]`` method
    (functional dependencies, keys, exclusion constraints).

    Raises:
        ConstraintError: for objects of unknown type.
    """
    result: list[DenialConstraint] = []
    for constraint in constraints:
        if isinstance(constraint, DenialConstraint):
            result.append(constraint)
        elif hasattr(constraint, "to_denials"):
            result.extend(constraint.to_denials())
        else:
            raise ConstraintError(
                f"cannot interpret {type(constraint).__name__} as a denial"
                " constraint"
            )
    return result
