"""A concrete text syntax for integrity constraints.

Hippo reads its set ``IC`` of integrity constraints as input; this parser
provides a compact syntax for writing them in configuration files, tests
and examples::

    KEY emp(name)
    FD emp: name -> dept, salary
    EXCLUSION emp(ssn) ~ contractor(ssn)
    DENIAL r1 IN emp, r2 IN emp WHERE r1.mgr = r2.name AND r1.salary > r2.salary
    FK order(customer_id) -> customer(id)

One constraint per line; blank lines and ``--`` comments are skipped.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from repro.constraints.denial import ConstraintAtom, DenialConstraint
from repro.constraints.exclusion import ExclusionConstraint
from repro.constraints.fd import FunctionalDependency, key_constraint
from repro.constraints.foreign_key import ForeignKeyConstraint
from repro.errors import ConstraintError
from repro.sql.parser import parse_expression

if TYPE_CHECKING:
    from repro.ra.sjud import SchemaProvider

Constraint = Union[
    DenialConstraint,
    FunctionalDependency,
    ExclusionConstraint,
    ForeignKeyConstraint,
]


def parse_constraints(
    text: str, schema_provider: Optional[SchemaProvider] = None
) -> list[Constraint]:
    """Parse a multi-line constraint specification.

    Args:
        text: the specification (see module docstring for the syntax).
        schema_provider: needed only for ``KEY`` constraints, whose RHS is
            every non-key column; anything with a ``relation_columns(name)``
            method (e.g. :class:`repro.ra.CatalogSchemaProvider`).

    Raises:
        ConstraintError: on syntax errors or a KEY without a provider.
    """
    constraints: list[Constraint] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("--", 1)[0].strip()
        if not line:
            continue
        try:
            constraints.append(parse_constraint(line, schema_provider))
        except ConstraintError as exc:
            raise ConstraintError(f"line {line_number}: {exc}") from None
    return constraints


def parse_constraint(
    line: str, schema_provider: Optional[SchemaProvider] = None
) -> Constraint:
    """Parse a single constraint."""
    stripped = line.strip()
    upper = stripped.upper()
    if upper.startswith("KEY "):
        return _parse_key(stripped[4:], schema_provider)
    if upper.startswith("FD "):
        return _parse_fd(stripped[3:])
    if upper.startswith("FK "):
        return _parse_fk(stripped[3:])
    if upper.startswith("EXCLUSION "):
        return _parse_exclusion(stripped[len("EXCLUSION "):])
    if upper.startswith("DENIAL "):
        return _parse_denial(stripped[len("DENIAL "):])
    raise ConstraintError(
        f"unknown constraint kind in {line!r}"
        " (expected KEY, FD, EXCLUSION or DENIAL)"
    )


def _split_names(text: str) -> list[str]:
    names = [name.strip() for name in text.replace(",", " ").split()]
    if not all(name.replace("_", "").isalnum() for name in names):
        raise ConstraintError(f"bad attribute list: {text!r}")
    return names


def _parse_relation_columns(text: str) -> tuple[str, list[str]]:
    """Parse ``rel(a, b, ...)``."""
    open_paren = text.find("(")
    if open_paren < 0 or not text.rstrip().endswith(")"):
        raise ConstraintError(f"expected rel(col, ...), got {text!r}")
    relation = text[:open_paren].strip()
    inner = text.rstrip()[open_paren + 1 : -1]
    if not relation:
        raise ConstraintError(f"missing relation name in {text!r}")
    return relation, _split_names(inner)


def _parse_key(
    text: str, schema_provider: Optional[SchemaProvider]
) -> FunctionalDependency:
    relation, key = _parse_relation_columns(text)
    if schema_provider is None:
        raise ConstraintError(
            "KEY constraints need a schema provider to determine the"
            " dependent columns; pass schema_provider= or use FD"
        )
    columns = schema_provider.relation_columns(relation)
    return key_constraint(relation, key, columns)


def _parse_fd(text: str) -> FunctionalDependency:
    if ":" not in text:
        raise ConstraintError(f"FD needs 'relation: lhs -> rhs', got {text!r}")
    relation, rest = text.split(":", 1)
    if "->" not in rest:
        raise ConstraintError(f"FD needs '->' in {text!r}")
    lhs_text, rhs_text = rest.split("->", 1)
    return FunctionalDependency(
        relation.strip(), _split_names(lhs_text), _split_names(rhs_text)
    )


def _parse_fk(text: str) -> ForeignKeyConstraint:
    separator = "->" if "->" in text else None
    if separator is None and " REFERENCES " in text.upper():
        split_at = text.upper().index(" REFERENCES ")
        left_text = text[:split_at]
        right_text = text[split_at + len(" REFERENCES "):]
    elif separator is not None:
        left_text, right_text = text.split("->", 1)
    else:
        raise ConstraintError(
            f"FK needs 'child(cols) -> parent(cols)', got {text!r}"
        )
    child, child_columns = _parse_relation_columns(left_text.strip())
    parent, parent_columns = _parse_relation_columns(right_text.strip())
    return ForeignKeyConstraint(child, child_columns, parent, parent_columns)


def _parse_exclusion(text: str) -> ExclusionConstraint:
    where_clause = None
    upper = text.upper()
    if " WHERE " in upper:
        split_at = upper.index(" WHERE ")
        where_clause = text[split_at + len(" WHERE "):]
        text = text[:split_at]
    if "~" not in text:
        raise ConstraintError(f"EXCLUSION needs 'rel(cols) ~ rel(cols)', got {text!r}")
    left_text, right_text = text.split("~", 1)
    left_relation, left_columns = _parse_relation_columns(left_text.strip())
    right_relation, right_columns = _parse_relation_columns(right_text.strip())
    if len(left_columns) != len(right_columns):
        raise ConstraintError(
            f"EXCLUSION column lists differ in length in {text!r}"
        )
    extra = parse_expression(where_clause) if where_clause else None
    return ExclusionConstraint(
        left_relation, right_relation, list(zip(left_columns, right_columns)), extra
    )


def _parse_denial(text: str) -> DenialConstraint:
    upper = text.upper()
    condition = None
    if " WHERE " in upper:
        split_at = upper.index(" WHERE ")
        condition_text = text[split_at + len(" WHERE "):]
        condition = parse_expression(condition_text)
        text = text[:split_at]
    atoms = []
    for part in text.split(","):
        words = part.split()
        if len(words) != 3 or words[1].upper() != "IN":
            raise ConstraintError(
                f"DENIAL atom must be 'alias IN relation', got {part.strip()!r}"
            )
        atoms.append(ConstraintAtom(words[0], words[2]))
    name = "denial:" + ",".join(f"{a.alias}@{a.relation}" for a in atoms)
    return DenialConstraint(name, tuple(atoms), condition)
