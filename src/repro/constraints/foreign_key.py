"""Restricted foreign-key constraints (the paper's named future work).

    "Future work includes the support for restricted foreign key
    constraints ..."  (Hippo, EDBT 2004)

A foreign key ``R(f1..fn) references S(k1..kn)`` is an *inclusion*
dependency -- not a denial constraint -- so deletion-only repairs
interact with it non-monotonically in general: deleting a referenced
tuple of ``S`` can create brand-new violations in ``R``, and the conflict
hypergraph cannot express that.  The **restricted** case sidesteps the
interaction:

    every relation referenced by a foreign key must itself be free of
    choice-involving conflicts -- it may lose tuples only through its own
    (deterministic) dangling deletions, and the reference graph must be
    acyclic.

Under the restriction, every repair keeps exactly the same set of
referenced tuples, so a tuple of ``R`` is dangling *statically*: its
deletion is forced in every repair, which is precisely a **singleton
hyperedge**.  Detection therefore walks the reference graph in
topological order, accumulating certain deletions, and emits one
singleton violation per dangling tuple; everything downstream (Prover,
envelope, repairs) works unchanged.

The restriction is *verified*, not assumed: detection raises
:class:`~repro.errors.ConstraintError` when a referenced relation has
denial-constraint conflicts or the references are cyclic, explaining why
the general case is out of Hippo's reach (as it was in 2004).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConstraintError


@dataclass(frozen=True)
class ForeignKeyConstraint:
    """``referencing(columns) REFERENCES referenced(ref_columns)``.

    Attributes:
        referencing: the child relation (its dangling tuples get deleted).
        columns: child columns, in order.
        referenced: the parent relation.
        ref_columns: parent columns matched positionally with ``columns``.
        match_nulls: when False (SQL's MATCH SIMPLE default), a child
            tuple with a NULL in any key column references nothing and is
            *not* a violation.
    """

    referencing: str
    columns: tuple[str, ...]
    referenced: str
    ref_columns: tuple[str, ...]
    match_nulls: bool = False

    def __init__(
        self,
        referencing: str,
        columns: Sequence[str],
        referenced: str,
        ref_columns: Sequence[str],
        match_nulls: bool = False,
    ) -> None:
        object.__setattr__(self, "referencing", referencing)
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "referenced", referenced)
        object.__setattr__(self, "ref_columns", tuple(ref_columns))
        object.__setattr__(self, "match_nulls", match_nulls)
        if not self.columns:
            raise ConstraintError("foreign key needs at least one column")
        if len(self.columns) != len(self.ref_columns):
            raise ConstraintError(
                "foreign key column lists differ in length:"
                f" {self.columns} vs {self.ref_columns}"
            )
        if self.referencing.lower() == self.referenced.lower():
            raise ConstraintError(
                "self-referencing foreign keys are outside the restricted"
                " class (the reference graph must be acyclic)"
            )

    def __str__(self) -> str:
        return (
            f"FK {self.referencing}({', '.join(self.columns)}) ->"
            f" {self.referenced}({', '.join(self.ref_columns)})"
        )


def topological_fk_order(
    foreign_keys: Iterable[ForeignKeyConstraint],
) -> list[ForeignKeyConstraint]:
    """Order FKs so parents are fully resolved before their children.

    Raises:
        ConstraintError: when the reference graph has a cycle (outside
            the restricted class).
    """
    fks = list(foreign_keys)
    # Edges: child relation -> parent relation.
    children: dict[str, set[str]] = {}
    for fk in fks:
        children.setdefault(fk.referencing.lower(), set()).add(
            fk.referenced.lower()
        )

    order: dict[str, int] = {}
    visiting: set[str] = set()

    def visit(relation: str) -> int:
        if relation in order:
            return order[relation]
        if relation in visiting:
            raise ConstraintError(
                f"cyclic foreign-key references through {relation!r}:"
                " outside the restricted class Hippo supports"
            )
        visiting.add(relation)
        depth = 0
        for parent in children.get(relation, ()):
            depth = max(depth, visit(parent) + 1)
        visiting.discard(relation)
        order[relation] = depth
        return depth

    for fk in fks:
        visit(fk.referencing.lower())
    # Resolve FKs whose *parent* is shallower first.
    return sorted(fks, key=lambda fk: order.get(fk.referenced.lower(), 0))
