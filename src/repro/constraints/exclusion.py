"""Exclusion constraints: no matching pair across two relations.

The paper names exclusion constraints, alongside FDs, as the denial
subclasses Hippo handles.  An exclusion constraint says two relations may
not both contain a tuple agreeing on given attributes (optionally under an
extra condition):

    NOT ( R(t1) AND S(t2) AND t1.a1 = t2.b1 AND ... AND extra )

For example, nobody may appear in both ``employee`` and ``contractor``
with the same ssn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.constraints.denial import ConstraintAtom, DenialConstraint
from repro.errors import ConstraintError
from repro.sql import ast


@dataclass(frozen=True)
class ExclusionConstraint:
    """``R(a1..an) excludes S(b1..bn)`` (optionally with an extra condition).

    Attributes:
        left_relation / right_relation: the two relations (may be equal,
            expressing "no two distinct tuples of R agree on ...", though a
            functional dependency is usually the better tool for that).
        pairs: attribute pairs that must match for a violation.
        extra: additional condition over aliases ``t1`` (left) and ``t2``
            (right).
    """

    left_relation: str
    right_relation: str
    pairs: tuple[tuple[str, str], ...]
    extra: Optional[ast.Expression] = None

    def __init__(
        self,
        left_relation: str,
        right_relation: str,
        pairs: Sequence[tuple[str, str]],
        extra: Optional[ast.Expression] = None,
    ) -> None:
        object.__setattr__(self, "left_relation", left_relation)
        object.__setattr__(self, "right_relation", right_relation)
        object.__setattr__(self, "pairs", tuple(tuple(pair) for pair in pairs))
        object.__setattr__(self, "extra", extra)
        if not self.pairs and self.extra is None:
            raise ConstraintError(
                "exclusion constraint needs attribute pairs or a condition"
            )

    def to_denials(self) -> list[DenialConstraint]:
        """The equivalent binary denial constraint."""
        atoms = (
            ConstraintAtom("t1", self.left_relation),
            ConstraintAtom("t2", self.right_relation),
        )
        conjuncts: list[ast.Expression] = [
            ast.BinaryOp(
                "=", ast.ColumnRef("t1", left), ast.ColumnRef("t2", right)
            )
            for left, right in self.pairs
        ]
        if self.extra is not None:
            conjuncts.append(self.extra)
        name = (
            f"excl:{self.left_relation}~{self.right_relation}:"
            f"{','.join(f'{l}={r}' for l, r in self.pairs)}"
        )
        return [DenialConstraint(name, atoms, ast.conjunction(conjuncts))]

    def __str__(self) -> str:
        pairs = ", ".join(f"{l}={r}" for l, r in self.pairs)
        return (
            f"EXCLUSION {self.left_relation} ~ {self.right_relation} ON {pairs}"
        )
