"""Integrity constraints: denial constraints and their common subclasses."""

from repro.constraints.denial import (
    ConstraintAtom,
    DenialConstraint,
    to_denial_constraints,
)
from repro.constraints.exclusion import ExclusionConstraint
from repro.constraints.fd import FunctionalDependency, key_constraint, primary_key_fd
from repro.constraints.foreign_key import ForeignKeyConstraint, topological_fk_order
from repro.constraints.parser import parse_constraint, parse_constraints

__all__ = [
    "ConstraintAtom",
    "DenialConstraint",
    "to_denial_constraints",
    "ExclusionConstraint",
    "ForeignKeyConstraint",
    "topological_fk_order",
    "FunctionalDependency",
    "key_constraint",
    "primary_key_fd",
    "parse_constraint",
    "parse_constraints",
]
