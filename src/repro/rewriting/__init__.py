"""The PODS'99 query-rewriting baseline and the static CQA-path classifier."""

from repro.rewriting.rewrite import (
    QueryClassification,
    RewritingEngine,
    classify,
)

__all__ = ["QueryClassification", "RewritingEngine", "classify"]
