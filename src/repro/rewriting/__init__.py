"""The PODS'99 query-rewriting baseline."""

from repro.rewriting.rewrite import RewritingEngine

__all__ = ["RewritingEngine"]
