"""The query-rewriting baseline (Arenas, Bertossi & Chomicki, PODS 1999).

The first practical CQA mechanism rewrites the input query ``Q`` into a
query ``Q'`` whose ordinary evaluation returns the consistent answers.
Each positive literal ``R(x)`` acquires a *residue* per constraint: for a
binary denial constraint ``NOT (R(t1) AND S(t2) AND phi)`` the literal
becomes

    R(x) AND NOT EXISTS (SELECT * FROM S t2 WHERE phi[t1 := x])

i.e. "x is in R and cannot be removed by a conflict partner".

The paper's demonstration (part 2 and part 3) positions Hippo against this
method on both axes reproduced here:

* **scope** -- rewriting handles S/SJ/SJD queries under *binary* universal
  constraints; it cannot express unions of candidate repairs members, and
  non-binary denial constraints have no first-order residue of this shape.
  Out-of-scope inputs raise :class:`~repro.errors.RewritingError`.
* **speed** -- the rewritten query drags correlated NOT EXISTS subqueries
  through the RDBMS for *every* tuple, conflicting or not, while Hippo
  consults the in-memory hypergraph only for envelope candidates.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backends.base import Backend

from repro.constraints.denial import DenialConstraint, to_denial_constraints
from repro.constraints.foreign_key import ForeignKeyConstraint
from repro.core.hippo import AnswerSet
from repro.engine.database import Database
from repro.engine.types import sort_key
from repro.errors import BackendError, RewritingError, UnsupportedQueryError
from repro.ra.sjud import (
    Atom,
    CatalogSchemaProvider,
    Difference,
    SchemaProvider,
    SJUDCore,
    SJUDTree,
    Union_,
    cores_of,
    from_sql_query,
)
from repro.ra.to_sql import core_to_select
from repro.sql import ast
from repro.sql.formatter import format_query
from repro.sql.parser import parse_query

QueryLike = Union[str, ast.Query, SJUDTree]


def _substitute_aliases(
    expr: ast.Expression, mapping: dict[str, str]
) -> ast.Expression:
    """Rename the table qualifiers of column references."""
    if isinstance(expr, ast.ColumnRef):
        if expr.table is not None and expr.table.lower() in mapping:
            return ast.ColumnRef(mapping[expr.table.lower()], expr.name)
        return expr
    updates = {}
    for field_info in fields(expr):  # type: ignore[arg-type]
        value = getattr(expr, field_info.name)
        if isinstance(value, ast.Expression):
            updates[field_info.name] = _substitute_aliases(value, mapping)
        elif (
            isinstance(value, tuple)
            and value
            and isinstance(value[0], ast.Expression)
        ):
            updates[field_info.name] = tuple(
                _substitute_aliases(item, mapping) for item in value
            )
        elif isinstance(value, tuple) and value and isinstance(value[0], tuple):
            updates[field_info.name] = tuple(
                tuple(_substitute_aliases(sub, mapping) for sub in item)
                for item in value
            )
    return replace(expr, **updates) if updates else expr


@dataclass
class RewritingEngine:
    """Rewrites SJD queries under binary denial constraints.

    Args:
        db: the database the rewritten SQL is executed against.
        constraints: the integrity constraints (FDs, keys, exclusions or
            explicit denial constraints).
    """

    def __init__(self, db: Database, constraints: Iterable[object]) -> None:
        self.db = db
        self.denials: list[DenialConstraint] = to_denial_constraints(constraints)
        self._schema = CatalogSchemaProvider(db.catalog)
        self._fresh = itertools.count()
        # Same contract as HippoEngine: binding a constraint set drops
        # cached statement plans, so classify-then-execute replans.
        db.invalidate_plans()

    # -------------------------------------------------------------- public

    def rewrite(self, query: QueryLike) -> ast.Query:
        """The rewritten query ``Q'`` as a SQL AST.

        Raises:
            RewritingError: when the query or constraints are outside the
                method's scope (unions; non-binary constraints touching the
                query's relations).
        """
        tree = self._as_tree(query)
        return ast.Query(self._rewrite_tree(tree))

    def rewrite_sql(self, query: QueryLike) -> str:
        """The rewritten query as SQL text (for display and logging)."""
        return format_query(self.rewrite(query))

    def consistent_answers(
        self, query: QueryLike, backend: Optional["Backend"] = None
    ) -> AnswerSet:
        """Evaluate the rewritten query on the RDBMS.

        Returns an :class:`~repro.core.hippo.AnswerSet` so benchmarks can
        treat all approaches uniformly.

        Args:
            backend: an execution backend to push the rewritten SQL to
                (see :mod:`repro.backends`) -- the rewriting method's
                "any RDBMS can evaluate Q'" claim made literal.  A
                backend that declines the query falls back to native
                execution; None always runs natively.
        """
        started = time.perf_counter()
        rewritten = self.rewrite(query)
        columns: Sequence[str]
        if backend is not None:
            try:
                columns, result_rows = backend.execute_query(rewritten)
            except BackendError:
                result = self.db.execute_statement(
                    ast.SelectStatement(rewritten)
                )
                columns, result_rows = result.columns, result.rows
        else:
            result = self.db.execute_statement(ast.SelectStatement(rewritten))
            columns, result_rows = result.columns, result.rows
        rows = sorted(
            set(result_rows), key=lambda row: tuple(sort_key(v) for v in row)
        )
        elapsed = time.perf_counter() - started
        return AnswerSet(
            list(columns),
            rows,
            {"total_seconds": elapsed, "rewritten_sql": format_query(rewritten)},
        )

    # ------------------------------------------------------------ internals

    def _as_tree(self, query: QueryLike) -> SJUDTree:
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, ast.Query):
            return from_sql_query(query, self._schema)
        return query

    def _rewrite_tree(self, tree: SJUDTree) -> Union[ast.SelectCore, ast.SetOperation]:
        if isinstance(tree, Union_):
            raise RewritingError(
                "query rewriting cannot express unions: consistent answers"
                " to UNION queries carry indefinite disjunctive information"
                " (this is Hippo's demonstrated advantage)"
            )
        if isinstance(tree, Difference):
            left = self._rewrite_tree(tree.left)
            right = self._possibly_true(tree.right)
            return ast.SetOperation("except", left, right)
        return self._rewrite_core(tree)

    def _rewrite_core(self, core: SJUDCore) -> ast.SelectCore:
        base = core_to_select(core)
        residues: list[ast.Expression] = []
        seen: set[str] = set()
        for atom in core.atoms:
            for residue in self._residues_for(atom):
                key = format_query(
                    ast.Query(ast.SelectCore((ast.SelectItem(residue, None),), ()))
                )
                if key not in seen:
                    seen.add(key)
                    residues.append(residue)
        where = ast.conjunction(
            ([base.where] if base.where is not None else []) + residues
        )
        return replace(base, where=where)

    def _residues_for(self, atom: Atom) -> list[ast.Expression]:
        """All residues for one positive literal."""
        residues: list[ast.Expression] = []
        relation = atom.relation.lower()
        for constraint in self.denials:
            positions = [
                index
                for index, c_atom in enumerate(constraint.atoms)
                if c_atom.relation.lower() == relation
            ]
            if not positions:
                continue
            if constraint.arity == 1:
                # Unary denial: the residue is the negated condition.
                if constraint.condition is not None:
                    mapping = {constraint.atoms[0].alias.lower(): atom.alias}
                    residues.append(
                        ast.UnaryOp(
                            "NOT",
                            _substitute_aliases(constraint.condition, mapping),
                        )
                    )
                else:
                    raise RewritingError(
                        f"constraint {constraint.name} forbids every"
                        f" {relation} tuple; the rewritten query is empty"
                    )
                continue
            if not constraint.is_binary:
                raise RewritingError(
                    f"constraint {constraint.name} relates"
                    f" {constraint.arity} tuples; query rewriting supports"
                    " only binary universal constraints (Hippo does not"
                    " have this restriction)"
                )
            for position in positions:
                other = constraint.atoms[1 - position]
                this = constraint.atoms[position]
                fresh_alias = f"rw{next(self._fresh)}"
                mapping = {
                    this.alias.lower(): atom.alias,
                    other.alias.lower(): fresh_alias,
                }
                condition = (
                    _substitute_aliases(constraint.condition, mapping)
                    if constraint.condition is not None
                    else None
                )
                subquery = ast.Query(
                    ast.SelectCore(
                        (ast.Star(None),),
                        (ast.TableRef(other.relation, fresh_alias),),
                        condition,
                    )
                )
                residues.append(ast.Exists(subquery, negated=True))
        return residues

    def _possibly_true(self, tree: SJUDTree) -> ast.SelectCore:
        """The negative side of a difference: tuples true in *some* repair.

        Exact for single-atom cores (every database tuple survives in some
        repair when no constraint produces singleton violations); larger
        negative sides are outside the classical rewriting's scope.
        """
        if not isinstance(tree, SJUDCore):
            raise RewritingError(
                "rewriting supports difference only with a simple"
                " single-block right-hand side"
            )
        if len(tree.atoms) != 1:
            raise RewritingError(
                "rewriting supports difference only when the right-hand"
                " side has a single relation atom (its 'possibly true'"
                " semantics is not first-order expressible otherwise)"
            )
        return core_to_select(tree)


# ---------------------------------------------------------------------------
# Static classification: which CQA path applies?
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QueryClassification:
    """The statically determined CQA path for one (query, constraints) pair.

    Attributes:
        path: ``"first-order-rewriting"`` when the PODS'99 rewriting
            answers the query exactly; ``"conflict-hypergraph"`` when
            Hippo's pipeline / repair enumeration is needed; or
            ``"unsupported"`` when the query is outside the SJUD class
            both paths require (existential projections are co-NP-hard).
        rewritable: whether the rewriting path applies.
        shape: the top-level query shape: ``core``, ``union`` or
            ``difference``.
        query_relations: the lower-cased base relations the query reads.
        reasons: why rewriting is out of scope (empty when it applies).
        denial_constraints: number of denial-form constraints considered.
        foreign_keys: number of foreign-key constraints (these alone
            force the hypergraph path).
    """

    path: str
    rewritable: bool
    shape: str
    query_relations: tuple[str, ...]
    reasons: tuple[str, ...]
    denial_constraints: int
    foreign_keys: int

    def describe(self) -> str:
        """A human-readable report (the CLI's ``.classify`` output)."""
        lines = [
            f"path: {self.path}",
            f"shape: {self.shape}",
            f"relations: {', '.join(self.query_relations) or '(none)'}",
            f"constraints: {self.denial_constraints} denial-form,"
            f" {self.foreign_keys} foreign-key",
        ]
        if self.rewritable:
            lines.append(
                "first-order rewriting applies: the rewritten query can be"
                " evaluated by any RDBMS with no repair machinery"
            )
        else:
            lines.append("first-order rewriting does not apply:")
            lines.extend(f"  - {reason}" for reason in self.reasons)
        return "\n".join(lines)


def _tree_nodes(tree: SJUDTree) -> Iterator[SJUDTree]:
    yield tree
    if isinstance(tree, (Union_, Difference)):
        yield from _tree_nodes(tree.left)
        yield from _tree_nodes(tree.right)


def classify(
    query: QueryLike,
    constraints: Iterable[object],
    schema: Optional[object] = None,
) -> QueryClassification:
    """Statically decide which CQA path answers ``query`` -- no data access.

    This is the rewriting scope test of :class:`RewritingEngine` turned
    into a pure function of the query and constraint *shapes*: unions,
    wide difference right-hand sides, non-binary denial constraints and
    foreign keys each force the conflict-hypergraph path; everything else
    is answerable by the PODS'99 first-order rewriting.  (It is also the
    stepping stone to a dichotomy-aware router: the same inspection point
    can grow finer tractability tests without touching the engines.)

    Args:
        query: SQL text, a parsed query AST, or an SJUD tree.
        constraints: the integrity constraints (any mix of FDs, keys,
            exclusions, denial constraints and foreign keys).
        schema: needed to resolve SQL input -- a
            :class:`~repro.ra.sjud.SchemaProvider` or anything with a
            ``catalog`` attribute (e.g. a Database).  SJUD-tree input
            needs no schema.

    Raises:
        RewritingError: when SQL input is given without a schema.
    """
    provider: Optional[SchemaProvider]
    catalog = getattr(schema, "catalog", None)
    if catalog is not None:
        provider = CatalogSchemaProvider(catalog)
    else:
        provider = schema  # type: ignore[assignment]
    foreign_keys = [
        c for c in constraints if isinstance(c, ForeignKeyConstraint)
    ]
    denials = to_denial_constraints(
        c for c in constraints if not isinstance(c, ForeignKeyConstraint)
    )
    if isinstance(query, str):
        query = parse_query(query)
    if isinstance(query, ast.Query):
        if provider is None:
            raise RewritingError(
                "classifying SQL text needs a schema: pass schema= a"
                " Database or SchemaProvider (SJUD trees need none)"
            )
        try:
            tree = from_sql_query(query, provider)
        except UnsupportedQueryError as exc:
            return QueryClassification(
                path="unsupported",
                rewritable=False,
                shape="unknown",
                query_relations=(),
                reasons=(
                    f"outside the SJUD class both paths require: {exc}",
                ),
                denial_constraints=len(denials),
                foreign_keys=len(foreign_keys),
            )
    else:
        tree = query
    relations = frozenset(
        atom.relation.lower()
        for core in cores_of(tree)
        for atom in core.atoms
    )
    nodes = list(_tree_nodes(tree))
    if isinstance(tree, SJUDCore):
        shape = "core"
    elif isinstance(tree, Union_):
        shape = "union"
    else:
        shape = "difference"

    reasons: list[str] = []
    if any(isinstance(node, Union_) for node in nodes):
        reasons.append(
            "the query contains a union: consistent answers to unions"
            " carry disjunctive information that no rewritten first-order"
            " query expresses (Hippo's demonstrated advantage)"
        )
    for node in nodes:
        if isinstance(node, Difference) and not (
            isinstance(node.right, SJUDCore) and len(node.right.atoms) == 1
        ):
            reasons.append(
                "a difference's right-hand side is not a single-atom"
                " core, so its 'possibly true' semantics is not"
                " first-order expressible"
            )
            break
    if foreign_keys:
        spans = ", ".join(
            sorted(
                f"{fk.referencing.lower()}->{fk.referenced.lower()}"
                for fk in foreign_keys
            )
        )
        reasons.append(
            f"foreign-key constraints ({spans}) have no binary denial"
            " form; their repairs delete referencing chains only the"
            " hypergraph path models"
        )
    for constraint in denials:
        if not relations & {a.relation.lower() for a in constraint.atoms}:
            continue  # cannot produce a residue for this query
        if constraint.arity == 1 and constraint.condition is None:
            reasons.append(
                f"constraint {constraint.name} forbids every"
                f" {constraint.atoms[0].relation} tuple, so the rewriting"
                " degenerates to the empty query"
            )
        elif not constraint.is_binary and constraint.arity != 1:
            reasons.append(
                f"constraint {constraint.name} relates {constraint.arity}"
                " tuples; rewriting supports only binary universal"
                " constraints"
            )

    rewritable = not reasons
    return QueryClassification(
        path="first-order-rewriting" if rewritable else "conflict-hypergraph",
        rewritable=rewritable,
        shape=shape,
        query_relations=tuple(sorted(relations)),
        reasons=tuple(reasons),
        denial_constraints=len(denials),
        foreign_keys=len(foreign_keys),
    )
