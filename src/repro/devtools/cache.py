"""Incremental per-file result cache for hippolint.

Lint results are a pure function of (analyzer sources, file content,
rule selection) -- every hippolint rule is per-file, including HL016,
whose layer contract check is deliberately local -- so results can be
reused as long as all three match.  The cache lives in
``.hippolint_cache/results.json`` under the working directory (the
directory is git-ignored) and is keyed by:

* an **analyzer fingerprint**: a digest over every ``.py`` source of
  the ``repro.devtools`` package, so editing any rule, domain or the
  framework invalidates everything at once;
* the file's content digest;
* the normalized ``--select`` set.

``hippolint --no-cache`` bypasses reads and writes entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Iterable, Optional

from repro.devtools.diagnostics import Diagnostic

#: Directory (relative to the working directory) holding the cache.
CACHE_DIR = ".hippolint_cache"


def analyzer_fingerprint() -> str:
    """A digest over the analyzer's own sources.

    Any change to the devtools package -- a new rule, an edited domain,
    a framework tweak -- yields a new fingerprint and therefore a cold
    cache; stale findings can never survive an analyzer upgrade.
    """
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(str(path.relative_to(package_dir)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def content_digest(data: bytes) -> str:
    """The cache key digest of one file's bytes."""
    return hashlib.sha256(data).hexdigest()


def select_key(select: Optional[Iterable[str]]) -> str:
    """Canonical form of a ``--select`` set (``*`` = all rules)."""
    if select is None:
        return "*"
    return ",".join(sorted(set(select)))


class ResultCache:
    """The on-disk cache: load once, query per file, save once."""

    def __init__(self, root: Optional[Path] = None) -> None:
        base = root if root is not None else Path(CACHE_DIR)
        self.path = base / "results.json"
        self.fingerprint = analyzer_fingerprint()
        self.entries: dict[str, dict[str, object]] = {}
        self.dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        if raw.get("fingerprint") != self.fingerprint:
            return  # Analyzer changed: start cold.
        entries = raw.get("files")
        if isinstance(entries, dict):
            self.entries = entries

    def get(
        self, file_path: str, digest: str, selection: str
    ) -> Optional[list[Diagnostic]]:
        """Cached diagnostics for ``file_path``, or None on a miss."""
        entry = self.entries.get(file_path)
        if (
            not isinstance(entry, dict)
            or entry.get("digest") != digest
            or entry.get("select") != selection
        ):
            self.misses += 1
            return None
        findings = entry.get("findings")
        if not isinstance(findings, list):
            self.misses += 1
            return None
        diagnostics: list[Diagnostic] = []
        for item in findings:
            if not (isinstance(item, list) and len(item) == 5):
                self.misses += 1
                return None
            line, col, rule_id, rule_name, message = item
            diagnostics.append(
                Diagnostic(
                    file_path,
                    int(line),
                    int(col),
                    str(rule_id),
                    str(rule_name),
                    str(message),
                )
            )
        self.hits += 1
        return diagnostics

    def put(
        self,
        file_path: str,
        digest: str,
        selection: str,
        diagnostics: list[Diagnostic],
    ) -> None:
        """Record ``file_path``'s results for the next run."""
        self.entries[file_path] = {
            "digest": digest,
            "select": selection,
            "findings": [
                [d.line, d.col, d.rule_id, d.rule_name, d.message]
                for d in diagnostics
            ],
        }
        self.dirty = True

    def save(self) -> None:
        """Atomically persist the cache (best effort: failures are not
        the analyzer's problem -- the next run just starts cold)."""
        if not self.dirty:
            return
        payload = json.dumps(
            {"fingerprint": self.fingerprint, "files": self.entries},
            separators=(",", ":"),
        )
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w",
                dir=str(self.path.parent),
                suffix=".tmp",
                delete=False,
                encoding="utf-8",
            )
            try:
                handle.write(payload)
            finally:
                handle.close()
            os.replace(handle.name, self.path)
        except OSError:
            return
