"""The ``hippolint`` console entry point.

Exit status 0 means no diagnostics; 1 means findings (or parse errors);
2 means bad usage.  The default ``text`` format prints one
``path:line:col: ID [name] message`` line per finding; ``--format=json``
emits a single machine-readable document on stdout and
``--format=github`` emits GitHub Actions workflow annotations.

Results are cached per file under ``.hippolint_cache/`` (keyed by
analyzer fingerprint, file digest and rule selection); ``--no-cache``
bypasses the cache entirely.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.devtools.cache import (
    ResultCache,
    content_digest,
    select_key,
)
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.framework import (
    PARSE_ERROR_ID,
    all_rules,
    analyze_source,
    analyze_paths,
    iter_python_files,
)

FORMATS = ("text", "json", "github")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hippolint",
        description=(
            "AST-based invariant analyzer for the repro durability and"
            " concurrency protocol"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to check (default: src tests)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="ID",
        help="run only the given rule id (repeatable, e.g. --select HL003)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        dest="output_format",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the .hippolint_cache directory",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every registered rule and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line on success",
    )
    return parser


def _analyze_cached(
    paths: Iterable[str], select: Optional[Iterable[str]]
) -> tuple[list[Diagnostic], int, ResultCache]:
    """Like :func:`analyze_paths`, but reusing per-file cached results."""
    cache = ResultCache()
    selection = select_key(select)
    diagnostics: list[Diagnostic] = []
    checked = 0
    for file_path in iter_python_files(paths):
        checked += 1
        try:
            data = Path(file_path).read_bytes()
            source = data.decode("utf-8")
        except (OSError, UnicodeDecodeError) as error:
            diagnostics.append(
                Diagnostic(
                    file_path,
                    1,
                    0,
                    PARSE_ERROR_ID,
                    "parse-error",
                    f"cannot read file: {error}",
                )
            )
            continue
        digest = content_digest(data)
        cached = cache.get(file_path, digest, selection)
        if cached is not None:
            diagnostics.extend(cached)
            continue
        fresh = analyze_source(source, file_path, select)
        cache.put(file_path, digest, selection, fresh)
        diagnostics.extend(fresh)
    cache.save()
    return diagnostics, checked, cache


def _emit_text(diagnostics: list[Diagnostic]) -> None:
    for diagnostic in diagnostics:
        print(diagnostic.render())


def _emit_json(
    diagnostics: list[Diagnostic], checked: int, elapsed: float
) -> None:
    document = {
        "checked_files": checked,
        "elapsed_seconds": round(elapsed, 3),
        "finding_count": len(diagnostics),
        "findings": [
            {
                "path": d.path,
                "line": d.line,
                "col": d.col,
                "rule_id": d.rule_id,
                "rule_name": d.rule_name,
                "message": d.message,
            }
            for d in diagnostics
        ],
    }
    print(json.dumps(document, indent=2, sort_keys=True))


def _emit_github(diagnostics: list[Diagnostic]) -> None:
    for d in diagnostics:
        # Workflow-command annotations; GitHub renders them inline on
        # the PR diff.  Newlines must be URL-encoded per the spec.
        message = d.message.replace("%", "%25").replace("\n", "%0A")
        print(
            f"::error file={d.path},line={d.line},col={d.col},"
            f"title={d.rule_id} [{d.rule_name}]::{message}"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the analyzer; returns the process exit status."""
    options = _build_parser().parse_args(argv)
    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.id} [{rule.name}]")
            print(f"    {rule.summary}")
            print(f"    rationale: {rule.rationale}")
        return 0
    started = time.perf_counter()
    if options.no_cache:
        diagnostics, checked = analyze_paths(options.paths, options.select)
    else:
        diagnostics, checked, _ = _analyze_cached(
            options.paths, options.select
        )
    elapsed = time.perf_counter() - started
    if options.output_format == "json":
        _emit_json(diagnostics, checked, elapsed)
    elif options.output_format == "github":
        _emit_github(diagnostics)
    else:
        _emit_text(diagnostics)
    if diagnostics:
        print(
            f"hippolint: {len(diagnostics)} finding(s) in {checked} file(s)"
            f" [{elapsed:.2f}s]",
            file=sys.stderr,
        )
        return 1
    if not options.quiet:
        print(
            f"hippolint: clean ({checked} file(s) checked in {elapsed:.2f}s)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
