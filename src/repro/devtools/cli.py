"""The ``hippolint`` console entry point.

Exit status 0 means no diagnostics; 1 means findings (or parse errors);
2 means bad usage.  Output is one ``path:line:col: ID [name] message``
line per finding so editors and CI annotate it directly.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.devtools.framework import all_rules, analyze_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hippolint",
        description=(
            "AST-based invariant analyzer for the repro durability and"
            " concurrency protocol"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to check (default: src tests)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="ID",
        help="run only the given rule id (repeatable, e.g. --select HL003)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every registered rule and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line on success",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the analyzer; returns the process exit status."""
    options = _build_parser().parse_args(argv)
    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.id} [{rule.name}]")
            print(f"    {rule.summary}")
            print(f"    rationale: {rule.rationale}")
        return 0
    started = time.perf_counter()
    diagnostics, checked = analyze_paths(options.paths, options.select)
    elapsed = time.perf_counter() - started
    for diagnostic in diagnostics:
        print(diagnostic.render())
    if diagnostics:
        print(
            f"hippolint: {len(diagnostics)} finding(s) in {checked} file(s)"
            f" [{elapsed:.2f}s]",
            file=sys.stderr,
        )
        return 1
    if not options.quiet:
        print(
            f"hippolint: clean ({checked} file(s) checked in {elapsed:.2f}s)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
