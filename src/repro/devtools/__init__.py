"""hippolint: an AST-based invariant analyzer for this repository.

The dynamic property harnesses (replica/shard equivalence, crash-recovery
tests) exercise the durability and concurrency protocol at runtime; the
rules in this package check the *structural* side of the same invariants
on every file, the way the paper's rewriting path statically classifies a
query before touching data.

Usage::

    hippolint src tests            # console entry point
    python -m repro.devtools src   # module form

Programmatic::

    from repro.devtools import analyze_paths, analyze_source
"""

from repro.devtools.diagnostics import Diagnostic, Suppressions
from repro.devtools.framework import (
    Rule,
    SourceModule,
    all_rules,
    analyze_module,
    analyze_paths,
    analyze_source,
    get_rule,
    register,
)
from repro.devtools import rules as _rules  # noqa: F401  (registers the rules)
from repro.devtools import flow_rules as _flow_rules  # noqa: F401  (HL013-HL016)

__all__ = [
    "Diagnostic",
    "Rule",
    "SourceModule",
    "Suppressions",
    "all_rules",
    "analyze_module",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "register",
]
