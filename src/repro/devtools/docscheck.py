"""Documentation checker: the CI ``docs`` job's engine.

Two guarantees keep the docs tree honest as the code grows:

* every **internal link** in ``README.md``, ``CONTRIBUTING.md`` and
  ``docs/**/*.md`` resolves -- the target file exists relative to the
  linking file, and a ``#fragment`` on a markdown target names a real
  heading in it (GitHub anchor slugging);
* the **rule table** in ``CONTRIBUTING.md`` lists every rule id the
  live hippolint registry exposes, so a newly registered rule cannot
  ship undocumented.

Run: ``python -m repro.devtools.docscheck [root]`` -- exit status 0
means clean, 1 means findings (one ``path: message`` line each), 2 bad
usage, mirroring the hippolint CLI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.devtools.framework import all_rules

#: Inline markdown links: ``[text](target)``.  Reference-style links
#: are not used in this repo's docs.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Markdown headings, for fragment targets.
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

#: Link targets that are not files to resolve.
_EXTERNAL = ("http://", "https://", "mailto:")

#: The markdown files the docs job guards (relative to the repo root);
#: ``docs/`` is globbed on top of these.
_GUARDED = ("README.md", "CONTRIBUTING.md")


def heading_anchors(markdown: str) -> set[str]:
    """The GitHub anchor slugs of every heading in ``markdown``.

    GitHub slugging: lowercase, inline code/emphasis markers dropped,
    spaces become ``-``, everything but word characters and hyphens is
    removed.  Close enough for the headings this repo writes.
    """
    anchors: set[str] = set()
    for match in _HEADING.finditer(markdown):
        title = match.group(1).strip().lower()
        title = title.replace("`", "").replace("*", "")
        title = re.sub(r"[^\w\- ]", "", title)
        anchors.add(re.sub(r" +", "-", title.strip()))
    return anchors


def guarded_files(root: Path) -> list[Path]:
    """The markdown files the docs job checks, in stable order."""
    files = [root / name for name in _GUARDED if (root / name).is_file()]
    files.extend(sorted((root / "docs").glob("**/*.md")))
    return files


def check_file_links(path: Path, root: Path) -> list[str]:
    """Findings for every unresolvable internal link in ``path``."""
    findings: list[str] = []
    text = path.read_text(encoding="utf-8")
    label = str(path.relative_to(root))
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        base, _, fragment = target.partition("#")
        resolved = path if not base else (path.parent / base)
        if not resolved.exists():
            findings.append(f"{label}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            anchors = heading_anchors(resolved.read_text(encoding="utf-8"))
            if fragment.lower() not in anchors:
                findings.append(
                    f"{label}: link -> {target} names no heading"
                    f" #{fragment} in {base or label}"
                )
    return findings


def check_rule_table(root: Path) -> list[str]:
    """Findings for registry rule ids missing from CONTRIBUTING.md."""
    contributing = root / "CONTRIBUTING.md"
    if not contributing.is_file():
        return ["CONTRIBUTING.md: missing (the rule table lives here)"]
    documented = set(
        re.findall(r"`(HL\d{3})`", contributing.read_text(encoding="utf-8"))
    )
    findings: list[str] = []
    for rule in all_rules():
        if rule.id not in documented:
            findings.append(
                f"CONTRIBUTING.md: rule table lacks a row for"
                f" {rule.id} [{rule.name}]"
            )
    return findings


def run(root: Path) -> list[str]:
    """Every docs finding under ``root``, one message per problem."""
    findings: list[str] = []
    for path in guarded_files(root):
        findings.extend(check_file_links(path, root))
    findings.extend(check_rule_table(root))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the docs check; returns the process exit status."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if len(arguments) > 1:
        print("usage: python -m repro.devtools.docscheck [root]")
        return 2
    root = Path(arguments[0]) if arguments else Path.cwd()
    if not root.is_dir():
        print(f"docscheck: {root} is not a directory")
        return 2
    findings = run(root)
    for finding in findings:
        print(finding)
    checked = len(guarded_files(root))
    if findings:
        print(f"docscheck: {len(findings)} finding(s) in {checked} file(s)")
        return 1
    print(f"docscheck: OK ({checked} markdown file(s) checked)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
