"""Diagnostics and suppression comments for hippolint.

A diagnostic pins a rule violation to ``path:line:col``.  Suppressions are
ordinary comments so they survive formatting and show up in review:

* ``# hippolint: disable=HL001`` -- suppress the listed rules on this line;
* ``# hippolint: disable-next-line=HL001`` -- same, for the following line;
* ``# hippolint: disable-file=HL001`` -- suppress for the whole file.

Several ids may be given separated by commas, and free-form justification
text may follow after ``--``; reviewers should insist on it::

    records, lost = cursor.poll()  # hippolint: disable=HL003 -- auto-commit
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_SUPPRESSION = re.compile(
    r"#\s*hippolint:\s*(?P<kind>disable|disable-next-line|disable-file)"
    r"\s*=\s*(?P<ids>[A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation at a precise source location."""

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str

    def render(self) -> str:
        """The conventional ``path:line:col: ID message`` form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )


@dataclass
class Suppressions:
    """Suppression comments parsed from one file."""

    file_level: set[str] = field(default_factory=set)
    by_line: dict[int, set[str]] = field(default_factory=dict)

    def covers(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is suppressed at ``line``."""
        if rule_id in self.file_level or "all" in self.file_level:
            return True
        ids = self.by_line.get(line, ())
        return rule_id in ids or "all" in ids


def parse_suppressions(source: str) -> Suppressions:
    """Extract suppression directives from the comments of ``source``."""
    suppressions = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        return suppressions
    for line, text in comments:
        match = _SUPPRESSION.search(text)
        if match is None:
            continue
        ids = {
            part.strip()
            for part in match.group("ids").split(",")
            if part.strip()
        }
        kind = match.group("kind")
        if kind == "disable-file":
            suppressions.file_level |= ids
        elif kind == "disable-next-line":
            suppressions.by_line.setdefault(line + 1, set()).update(ids)
        else:
            suppressions.by_line.setdefault(line, set()).update(ids)
    return suppressions
