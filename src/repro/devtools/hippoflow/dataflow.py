"""A forward worklist dataflow engine with pluggable abstract domains.

A :class:`Domain` supplies the lattice (``initial``/``join``) and the
per-element transfer functions; :func:`analyze` drives them to a
fixpoint over a :class:`~repro.devtools.hippoflow.cfg.CFG` and returns
the state at the entry of every reachable block.

Exception edges carry the join of :meth:`Domain.transfer_exception`
applied to the state observed *before* each may-raise element of the
block -- a failed call's normal effect never happened.  Domains
override ``transfer_exception`` when part of the effect survives the
raise (a ``close()`` that fails has still consumed the handle, the
standard leak-checker convention).

Unreachable blocks have no entry in the result (their state is bottom).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator, Optional

from repro.devtools.hippoflow.cfg import CFG, Block, Element, may_raise

#: Abstract states are domain-defined; the engine only needs ``==``.
State = Any


class Domain:
    """Base class for abstract domains.

    Subclasses define the state representation (any value supporting
    ``==``; treat states as immutable -- ``transfer`` returns fresh
    values) and override :meth:`initial`, :meth:`join` and
    :meth:`transfer`.  ``transfer_exception`` defaults to the
    pre-element state.
    """

    def initial(self) -> State:
        """The state at function entry."""
        raise NotImplementedError

    def join(self, left: State, right: State) -> State:
        """The least upper bound of two states."""
        raise NotImplementedError

    def transfer(self, element: Element, state: State) -> State:
        """The state after ``element`` executes normally."""
        raise NotImplementedError

    def transfer_exception(self, element: Element, state: State) -> State:
        """The state flowing on ``element``'s exception edge."""
        return state


def flow_block(
    domain: Domain, block: Block, state: State
) -> tuple[State, Optional[State]]:
    """Push ``state`` through ``block``.

    Returns ``(out_state, exceptional_state)`` where the exceptional
    state is the join over every may-raise element, or ``None`` when
    nothing in the block can raise.
    """
    exceptional: Optional[State] = None
    for element in block.elements:
        if may_raise(element):
            raised = domain.transfer_exception(element, state)
            exceptional = (
                raised
                if exceptional is None
                else domain.join(exceptional, raised)
            )
        state = domain.transfer(element, state)
    return state, exceptional


def analyze(cfg: CFG, domain: Domain) -> dict[int, State]:
    """Run ``domain`` to fixpoint over ``cfg``.

    Returns block id -> state at block entry, for reachable blocks.
    """
    in_states: dict[int, State] = {cfg.entry.id: domain.initial()}
    queue: deque[Block] = deque([cfg.entry])
    queued: set[int] = {cfg.entry.id}
    steps = 0
    limit = 64 * max(1, len(cfg.blocks)) * max(1, len(cfg.blocks))
    while queue:
        steps += 1
        if steps > limit:  # pragma: no cover - domains must be finite
            raise RuntimeError(
                f"dataflow did not converge in {limit} steps"
                f" ({type(domain).__name__})"
            )
        block = queue.popleft()
        queued.discard(block.id)
        out_state, exc_state = flow_block(domain, block, in_states[block.id])
        for target in block.succ:
            _propagate(domain, in_states, queue, queued, target, out_state)
        if exc_state is not None:
            for target in block.exc:
                _propagate(domain, in_states, queue, queued, target, exc_state)
    return in_states


def _propagate(
    domain: Domain,
    in_states: dict[int, State],
    queue: deque[Block],
    queued: set[int],
    target: Block,
    state: State,
) -> None:
    if target.id in in_states:
        merged = domain.join(in_states[target.id], state)
        if merged == in_states[target.id]:
            return
        in_states[target.id] = merged
    else:
        in_states[target.id] = state
    if target.id not in queued:
        queued.add(target.id)
        queue.append(target)


def replay(
    cfg: CFG, domain: Domain, in_states: dict[int, State]
) -> Iterator[tuple[Element, State]]:
    """Yield ``(element, state-before-element)`` for reachable blocks.

    Rules use this after :func:`analyze` to check program points (e.g.
    a guarded call must see the lock held in the state *before* it).
    """
    for block in cfg.blocks:
        if block.id not in in_states:
            continue
        state = in_states[block.id]
        for element in block.elements:
            yield element, state
            state = domain.transfer(element, state)
