"""Flow-sensitive analysis toolkit behind hippolint's HL013-HL016.

Layers, bottom up:

* :mod:`repro.devtools.hippoflow.cfg` -- per-function control-flow
  graphs over :mod:`ast`, with explicit exception edges and
  ``with``/``finally`` cleanup regions.
* :mod:`repro.devtools.hippoflow.dataflow` -- a worklist fixpoint
  engine parameterized by pluggable abstract domains.
* :mod:`repro.devtools.hippoflow.domains` -- reaching definitions,
  resource/ownership state machines, lock-held tracking, and string
  interpolation taint.
* :mod:`repro.devtools.hippoflow.layering` -- the import-graph layer
  contract and cycle detection (also a standalone CLI).

Nothing in this package imports the ``repro`` runtime it analyzes --
the ``devtools`` layer of the contract in
:data:`~repro.devtools.hippoflow.layering.LAYERS` enforces that.
"""

from __future__ import annotations

from repro.devtools.hippoflow.cfg import (
    CFG,
    Block,
    Element,
    WithEnter,
    WithExit,
    build_cfg,
    may_raise,
)
from repro.devtools.hippoflow.dataflow import (
    Domain,
    State,
    analyze,
    flow_block,
    replay,
)
from repro.devtools.hippoflow.domains import (
    AcquisitionSpec,
    LockDomain,
    LockState,
    ReachingDefinitions,
    Resource,
    ResourceDomain,
    ResourceState,
    TaintDomain,
)
# Deliberately no re-export of ``layering``: the module doubles as a
# ``python -m`` CLI, and importing it here would make runpy warn about
# the double import on every standalone run.

__all__ = [
    "CFG",
    "Block",
    "Element",
    "WithEnter",
    "WithExit",
    "build_cfg",
    "may_raise",
    "Domain",
    "State",
    "analyze",
    "flow_block",
    "replay",
    "AcquisitionSpec",
    "LockDomain",
    "LockState",
    "ReachingDefinitions",
    "Resource",
    "ResourceDomain",
    "ResourceState",
    "TaintDomain",
]
