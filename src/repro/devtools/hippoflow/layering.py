"""Import-graph layering analysis for the ``repro`` package.

Two checks live here:

* **Layer contract** -- :data:`LAYERS` pins, for every top-level
  package under ``repro``, the set of sibling packages it may import
  at module level.  The contract is checked per module (rule HL016
  wires it into hippolint) so the result is cacheable file-by-file.
* **Cycle detection** -- the full module-level import graph must be
  acyclic.  ``from repro.pkg import name`` resolves through package
  facades to ``repro.pkg.name`` when that is a real module, and edges
  from a module to one of its own ancestor packages are dropped (a
  package ``__init__`` re-exporting its children is not a cycle).

Only *runtime module-level* imports count: imports inside functions
and inside ``if TYPE_CHECKING:`` blocks are free of layering
constraints because they cannot create import-time dependencies.

Run standalone::

    PYTHONPATH=src python -m repro.devtools.hippoflow.layering src/repro
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

ImportStatement = Union[ast.Import, ast.ImportFrom]

#: Allowed module-level dependencies per top-level layer.  A layer may
#: always import from itself; the root facade ``repro/__init__.py`` is
#: exempt (it exists to re-export).  ``devtools`` deliberately maps to
#: the empty set: the analyzer must never import the runtime it checks.
LAYERS: dict[str, frozenset[str]] = {
    "version": frozenset(),
    "errors": frozenset(),
    "sql": frozenset({"errors", "engine"}),
    "engine": frozenset({"errors", "sql"}),
    "ra": frozenset({"errors", "sql", "engine"}),
    "constraints": frozenset({"errors", "sql"}),
    "aggregates": frozenset({"constraints", "engine", "errors"}),
    "workloads": frozenset({"constraints", "engine", "errors"}),
    "conflicts": frozenset({"constraints", "engine", "errors", "ra", "sql"}),
    "core": frozenset(
        {"conflicts", "constraints", "engine", "errors", "ra", "sql"}
    ),
    "repairs": frozenset(
        {"conflicts", "constraints", "engine", "errors", "ra", "sql"}
    ),
    "rewriting": frozenset(
        {"constraints", "core", "engine", "errors", "ra", "sql"}
    ),
    "backends": frozenset({"engine", "errors", "ra", "sql"}),
    "smoke": frozenset(
        {
            "backends",
            "conflicts",
            "constraints",
            "core",
            "engine",
            "errors",
            "ra",
            "repairs",
            "rewriting",
            "sql",
        }
    ),
    "cli": frozenset(
        {
            "backends",
            "conflicts",
            "constraints",
            "core",
            "engine",
            "errors",
            "ra",
            "repairs",
            "rewriting",
            "sql",
            "workloads",
        }
    ),
    "devtools": frozenset(),
}


@dataclass(frozen=True)
class ImportEdge:
    """One module-level import of a ``repro`` module."""

    module: str
    target: str
    lineno: int
    col: int


@dataclass(frozen=True)
class Violation:
    """A contract breach, renderable as ``path:line:col: message``."""

    path: str
    lineno: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.lineno}:{self.col}: {self.message}"


@dataclass
class ProjectImports:
    """The scanned import graph of a source tree."""

    modules: dict[str, Path] = field(default_factory=dict)
    import_edges: list[ImportEdge] = field(default_factory=list)


def layer_of(module: str) -> Optional[str]:
    """The top-level layer of a ``repro`` module (None for the root)."""
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


def module_name_for(path: Path, root: Path) -> Optional[str]:
    """Dotted module name of ``path`` relative to the tree at ``root``.

    ``root`` itself maps to the package named by its directory; returns
    None for non-Python files.
    """
    if path.suffix != ".py":
        return None
    relative = path.relative_to(root)
    parts = [root.name, *relative.with_suffix("").parts]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_type_checking(test: ast.expr) -> bool:
    return (
        isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"
    ) or (isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING")


def module_level_imports(
    tree: ast.Module,
) -> list[tuple[ImportStatement, int, int]]:
    """Runtime module-level import statements of ``tree``.

    Descends into ``if``/``try``/class bodies (those run at import
    time) but not into functions or ``if TYPE_CHECKING:`` branches.
    """
    found: list[tuple[ImportStatement, int, int]] = []

    def visit(statements: Iterable[ast.stmt]) -> None:
        for statement in statements:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if isinstance(statement, ast.If):
                if not _is_type_checking(statement.test):
                    visit(statement.body)
                visit(statement.orelse)
            elif isinstance(statement, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                visit(statement.body)
                for handler in statement.handlers:
                    visit(handler.body)
                visit(statement.orelse)
                visit(statement.finalbody)
            elif isinstance(statement, ast.ClassDef):
                visit(statement.body)
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                visit(statement.body)
            elif isinstance(statement, (ast.Import, ast.ImportFrom)):
                found.append(
                    (statement, statement.lineno, statement.col_offset)
                )

    visit(tree.body)
    return found


def resolve_targets(
    statement: ImportStatement,
    importer: str,
    importer_is_package: bool,
    modules: Optional[dict[str, Path]] = None,
) -> list[str]:
    """The ``repro`` modules a single import statement depends on.

    With a ``modules`` map, ``from repro.pkg import name`` resolves to
    ``repro.pkg.name`` when that is a real module (facade resolution);
    without one it conservatively resolves to ``repro.pkg``.
    """
    targets: list[str] = []
    if isinstance(statement, ast.Import):
        for alias in statement.names:
            if alias.name.split(".")[0] == "repro":
                targets.append(alias.name)
        return targets
    base = statement.module or ""
    if statement.level:
        package = importer if importer_is_package else importer.rpartition(".")[0]
        for _ in range(statement.level - 1):
            package = package.rpartition(".")[0]
        base = f"{package}.{base}" if base else package
    if base.split(".")[0] != "repro":
        return []
    for alias in statement.names:
        candidate = f"{base}.{alias.name}"
        if modules is not None and candidate in modules:
            targets.append(candidate)
        else:
            targets.append(base)
    return targets


def check_module(
    module: str,
    tree: ast.Module,
    is_package: bool = False,
) -> list[tuple[int, int, str]]:
    """Layer-contract violations of one module: ``(line, col, message)``.

    Purely local -- needs no project-wide state, so hippolint can cache
    the result per file.
    """
    source_layer = layer_of(module)
    if source_layer is None:
        return []  # The root facade re-exports by design.
    allowed = LAYERS.get(source_layer)
    findings: list[tuple[int, int, str]] = []
    if allowed is None:
        findings.append(
            (
                1,
                0,
                f"layer '{source_layer}' is not in the LAYERS contract;"
                " add it to repro.devtools.hippoflow.layering",
            )
        )
        return findings
    for statement, lineno, col in module_level_imports(tree):
        for target in resolve_targets(statement, module, is_package):
            target_layer = layer_of(target)
            if target_layer is None or target_layer == source_layer:
                continue
            if target_layer not in allowed:
                findings.append(
                    (
                        lineno,
                        col,
                        f"layer '{source_layer}' must not import from"
                        f" '{target_layer}' ({target}); allowed:"
                        f" {sorted(allowed) or 'nothing'}",
                    )
                )
    return findings


def scan_tree(root: Path) -> ProjectImports:
    """Parse every module under ``root`` and collect its import edges."""
    project = ProjectImports()
    paths: dict[str, Path] = {}
    for path in sorted(root.rglob("*.py")):
        name = module_name_for(path, root)
        if name is not None:
            paths[name] = path
    project.modules = paths
    for name, path in paths.items():
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        is_package = path.name == "__init__.py"
        for statement, lineno, col in module_level_imports(tree):
            for target in resolve_targets(
                statement, name, is_package, modules=paths
            ):
                project.import_edges.append(ImportEdge(name, target, lineno, col))
    return project


def find_cycles(project: ProjectImports) -> list[list[str]]:
    """Strongly connected components of size > 1 (or self-loops).

    Edges into a module's own ancestor package are dropped: a package
    facade importing its children back is re-export, not a cycle.
    """
    graph: dict[str, set[str]] = {name: set() for name in project.modules}
    for edge in project.import_edges:
        if edge.target not in graph:
            continue
        if edge.module.startswith(edge.target + "."):
            continue  # Child importing its own ancestor facade.
        if edge.module != edge.target:
            graph[edge.module].add(edge.target)

    # Tarjan's algorithm, iterative to survive deep trees.
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(start: str) -> None:
        work: list[tuple[str, Iterable[str]]] = [(start, iter(sorted(graph[start])))]
        index_of[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = low[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph[successor]))))
                    advanced = True
                    break
                if successor in on_stack:
                    low[node] = min(low[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))

    for name in sorted(graph):
        if name not in index_of:
            strongconnect(name)
    return sorted(sccs)


def check_tree(root: Path) -> list[Violation]:
    """All layering violations and cycles under ``root``."""
    project = scan_tree(root)
    violations: list[Violation] = []
    for name, path in sorted(project.modules.items()):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        is_package = path.name == "__init__.py"
        for lineno, col, message in check_module(name, tree, is_package):
            violations.append(Violation(str(path), lineno, col, message))
    for cycle in find_cycles(project):
        head = project.modules[cycle[0]]
        violations.append(
            Violation(
                str(head),
                1,
                0,
                "import cycle between modules: " + " -> ".join(cycle),
            )
        )
    return violations


def main(argv: Optional[list[str]] = None) -> int:
    """Standalone entry point: ``layering <tree> [<tree> ...]``."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments:
        arguments = ["src/repro"]
    violations: list[Violation] = []
    for argument in arguments:
        root = Path(argument)
        if not root.is_dir():
            print(f"layering: no such tree: {root}", file=sys.stderr)
            return 2
        violations.extend(check_tree(root))
    for violation in violations:
        print(violation.render())
    if violations:
        print(
            f"layering: {len(violations)} violation(s)",
            file=sys.stderr,
        )
        return 1
    print("layering: contract holds", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
