"""Per-function control-flow graphs over ``ast``.

A :class:`CFG` has one block per straight-line run of statements plus
three distinguished blocks: ``entry``, ``exit`` (normal completion --
every ``return`` and the final fall-off route here) and ``raise_exit``
(an exception escaped the function).  Two edge kinds connect blocks:

* **normal** edges (``Block.succ``) carry the state a block's transfer
  produced at its end;
* **exception** edges (``Block.exc``) carry the state observed *at the
  raising element* -- the dataflow engine joins the pre-transfer state
  of every may-raise element in the block (see
  :func:`repro.devtools.hippoflow.dataflow.analyze`).

``with`` statements insert :class:`WithEnter`/:class:`WithExit` marker
elements so abstract domains observe context-manager scope on the
normal path; the exceptional path routes through a cleanup block that
holds the :class:`WithExit` markers before propagating outward.

The graph deliberately over-approximates feasible paths: a ``finally``
body is built once and its end fans out to every continuation that
routed through it (fall-through, exception propagation, ``return``,
``break``/``continue``), and loop conditions always get a false edge.
Extra paths keep may-analyses (leaks, taint) sound and make
must-analyses (lock held) conservative -- both err toward reporting.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

#: The function node kinds a CFG is built for.
FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class WithEnter:
    """Marker element: a ``with`` item's context was just entered."""

    item: ast.withitem
    lineno: int
    col: int


@dataclass(frozen=True)
class WithExit:
    """Marker element: a ``with`` item's context is being exited."""

    item: ast.withitem
    lineno: int
    col: int


#: What a block's ``elements`` list holds: statements and expressions in
#: evaluation order, plus the ``with`` scope markers.
Element = Union[ast.AST, WithEnter, WithExit]


@dataclass(eq=False)  # identity semantics: blocks are graph nodes
class Block:
    """One straight-line run of elements plus its outgoing edges."""

    id: int
    label: str
    elements: list[Element] = field(default_factory=list)
    succ: list["Block"] = field(default_factory=list)
    exc: list["Block"] = field(default_factory=list)

    def __repr__(self) -> str:  # keep dataflow debugging readable
        return f"<Block {self.id} {self.label!r}>"


@dataclass
class CFG:
    """A function's control-flow graph."""

    func: FuncDef
    blocks: list[Block]
    entry: Block
    exit: Block
    raise_exit: Block

    def reachable(self) -> set[int]:
        """Ids of blocks reachable from ``entry`` along any edge kind."""
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block.id in seen:
                continue
            seen.add(block.id)
            stack.extend(block.succ)
            stack.extend(block.exc)
        return seen


def may_raise(element: Element) -> bool:
    """Whether executing ``element`` can raise.

    The heuristic is call-centric: calls, ``raise``, ``assert`` and
    loop-iteration elements get exception edges; pure name/attribute
    traffic does not.  Nested function and lambda bodies do not execute
    here, so calls inside them are ignored.
    """
    if isinstance(element, (WithEnter, WithExit)):
        return False
    if isinstance(element, (ast.Raise, ast.Assert, ast.For, ast.AsyncFor)):
        return True
    if isinstance(element, ast.ExceptHandler):
        # The element only stands for the `except E as name:` binding;
        # the handler body is decomposed into its own elements.
        return element.type is not None and any(
            isinstance(node, ast.Call)
            for node in _walk_executed(element.type)
        )
    return any(isinstance(node, ast.Call) for node in _walk_executed(element))


def _catches_all(handler: ast.ExceptHandler) -> bool:
    """Whether a handler intercepts every exception.

    ``except:`` and ``except BaseException:`` are total; ``except
    Exception:`` is not (KeyboardInterrupt/SystemExit still escape), so
    cleanup that must hold on *all* paths needs the wider form.
    """
    if handler.type is None:
        return True
    node: ast.expr = handler.type
    if isinstance(node, ast.Attribute):
        return node.attr == "BaseException"
    return isinstance(node, ast.Name) and node.id == "BaseException"


def _walk_executed(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` skipping bodies that only run later (defs/lambdas)."""
    yield node
    if isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
    ):
        return
    for child in ast.iter_child_nodes(node):
        yield from _walk_executed(child)


@dataclass
class _Unwind:
    """A cleanup region (``finally`` body or ``with`` exit) under build.

    ``conts`` accumulates every continuation block that control may
    proceed to after the cleanup ran; it is wired up once the region's
    body has been built.
    """

    entry: Block
    conts: list[Block] = field(default_factory=list)
    #: ``len(loop_stack)`` at creation -- break/continue only unwind
    #: through regions opened inside their own loop.
    loop_depth: int = 0
    #: ``with`` cleanups only serve abnormal paths; ``finally`` bodies
    #: also sit on the fall-through path.
    on_normal_path: bool = False

    def add_cont(self, block: Block) -> None:
        if block not in self.conts:
            self.conts.append(block)


class _Builder:
    """Single-use CFG builder for one function definition."""

    def __init__(self, func: FuncDef) -> None:
        self.func = func
        self.blocks: list[Block] = []
        self.entry = self._block("entry")
        self.exit = self._block("exit")
        self.raise_exit = self._block("raise-exit")
        #: innermost-last stack of blocks exceptions currently flow to.
        self.exc_stack: list[Block] = [self.raise_exit]
        #: innermost-last ``(head, after)`` per enclosing loop.
        self.loop_stack: list[tuple[Block, Block]] = []
        #: innermost-last cleanup regions ``return``/``break`` unwind
        #: through.
        self.unwind_stack: list[_Unwind] = []

    def build(self) -> CFG:
        end = self._body(self.func.body, self.entry)
        if end is not None:
            self._edge(end, self.exit)
        return CFG(self.func, self.blocks, self.entry, self.exit, self.raise_exit)

    # ------------------------------------------------------------ plumbing

    def _block(self, label: str) -> Block:
        block = Block(len(self.blocks), label)
        self.blocks.append(block)
        return block

    def _edge(self, source: Block, target: Block) -> None:
        if target not in source.succ:
            source.succ.append(target)

    def _exc_edge(self, source: Block, target: Block) -> None:
        if target not in source.exc:
            source.exc.append(target)

    def _append(self, block: Block, element: Element) -> None:
        block.elements.append(element)
        if may_raise(element):
            self._exc_edge(block, self.exc_stack[-1])

    def _unwind_to(self, current: Block, target: Block, for_loop: bool) -> None:
        """Route an abnormal exit through enclosing cleanup regions.

        ``return`` unwinds through every region; ``break``/``continue``
        only through regions opened inside the innermost loop.
        """
        if for_loop:
            depth = len(self.loop_stack)
            chain = [r for r in self.unwind_stack if r.loop_depth >= depth]
        else:
            chain = list(self.unwind_stack)
        if not chain:
            self._edge(current, target)
            return
        self._edge(current, chain[-1].entry)
        for index in range(len(chain) - 1, 0, -1):
            chain[index].add_cont(chain[index - 1].entry)
        chain[0].add_cont(target)

    # ---------------------------------------------------------- statements

    def _body(
        self, stmts: list[ast.stmt], current: Optional[Block]
    ) -> Optional[Block]:
        """Build ``stmts`` starting at ``current``.

        Returns the open block after the sequence, or ``None`` when
        control cannot fall through (return/raise/break/continue on
        every path).  Dead statements after a terminator land in a
        fresh unreachable block so their structure still exists.
        """
        for stmt in stmts:
            if current is None:
                current = self._block("unreachable")
            current = self._statement(stmt, current)
        return current

    def _statement(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        if isinstance(stmt, ast.Return):
            self._append(current, stmt)
            self._unwind_to(current, self.exit, for_loop=False)
            return None
        if isinstance(stmt, ast.Raise):
            self._append(current, stmt)
            return None
        if isinstance(stmt, ast.Break):
            if self.loop_stack:
                self._unwind_to(current, self.loop_stack[-1][1], for_loop=True)
            return None
        if isinstance(stmt, ast.Continue):
            if self.loop_stack:
                self._unwind_to(current, self.loop_stack[-1][0], for_loop=True)
            return None
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if _TRY_STAR is not None and isinstance(stmt, _TRY_STAR):
            return self._try(stmt, current)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current)
        # Simple statement (including nested def/class, whose bodies are
        # separate CFGs): one element, in order.
        self._append(current, stmt)
        return current

    def _if(self, stmt: ast.If, current: Block) -> Optional[Block]:
        self._append(current, stmt.test)
        after = self._block("after-if")
        then_start = self._block("if-then")
        self._edge(current, then_start)
        then_end = self._body(stmt.body, then_start)
        if then_end is not None:
            self._edge(then_end, after)
        if stmt.orelse:
            else_start = self._block("if-else")
            self._edge(current, else_start)
            else_end = self._body(stmt.orelse, else_start)
            if else_end is not None:
                self._edge(else_end, after)
        else:
            self._edge(current, after)
        return after

    def _while(self, stmt: ast.While, current: Block) -> Block:
        head = self._block("loop-head")
        self._edge(current, head)
        self._append(head, stmt.test)
        after = self._block("after-loop")
        body_start = self._block("loop-body")
        self._edge(head, body_start)
        self.loop_stack.append((head, after))
        body_end = self._body(stmt.body, body_start)
        self.loop_stack.pop()
        if body_end is not None:
            self._edge(body_end, head)
        self._loop_else(stmt.orelse, head, after)
        return after

    def _for(self, stmt: Union[ast.For, ast.AsyncFor], current: Block) -> Block:
        self._append(current, stmt.iter)
        head = self._block("loop-head")
        self._edge(current, head)
        # The For node itself stands for "bind target from the iterator"
        # so domains see the target assignment once per entry.
        self._append(head, stmt)
        after = self._block("after-loop")
        body_start = self._block("loop-body")
        self._edge(head, body_start)
        self.loop_stack.append((head, after))
        body_end = self._body(stmt.body, body_start)
        self.loop_stack.pop()
        if body_end is not None:
            self._edge(body_end, head)
        self._loop_else(stmt.orelse, head, after)
        return after

    def _loop_else(
        self, orelse: list[ast.stmt], head: Block, after: Block
    ) -> None:
        if orelse:
            else_start = self._block("loop-else")
            self._edge(head, else_start)
            else_end = self._body(orelse, else_start)
            if else_end is not None:
                self._edge(else_end, after)
        else:
            self._edge(head, after)

    def _with(
        self, stmt: Union[ast.With, ast.AsyncWith], current: Block
    ) -> Optional[Block]:
        for item in stmt.items:
            self._append(current, item.context_expr)
            self._append(
                current,
                WithEnter(item, stmt.lineno, stmt.col_offset),
            )
        cleanup = self._block("with-cleanup")
        for item in reversed(stmt.items):
            cleanup.elements.append(
                WithExit(item, stmt.lineno, stmt.col_offset)
            )
        outer_exc = self.exc_stack[-1]
        record = _Unwind(cleanup, loop_depth=len(self.loop_stack))
        record.add_cont(outer_exc)
        self.exc_stack.append(cleanup)
        self.unwind_stack.append(record)
        body_start = self._block("with-body")
        self._edge(current, body_start)
        body_end = self._body(stmt.body, body_start)
        self.unwind_stack.pop()
        self.exc_stack.pop()
        for cont in record.conts:
            self._edge(cleanup, cont)
        if body_end is None:
            return None
        for item in reversed(stmt.items):
            body_end.elements.append(
                WithExit(item, stmt.lineno, stmt.col_offset)
            )
        return body_end

    def _try(self, stmt: ast.Try, current: Block) -> Optional[Block]:
        after = self._block("after-try")
        outer_exc = self.exc_stack[-1]
        record: Optional[_Unwind] = None
        if stmt.finalbody:
            fin_entry = self._block("finally")
            record = _Unwind(
                fin_entry,
                loop_depth=len(self.loop_stack),
                on_normal_path=True,
            )
            record.add_cont(outer_exc)
            self.unwind_stack.append(record)
            normal_cont = fin_entry
            escape_target = fin_entry
        else:
            normal_cont = after
            escape_target = outer_exc

        dispatch: Optional[Block] = None
        if stmt.handlers:
            dispatch = self._block("except-dispatch")
            # An exception no handler matches keeps propagating -- unless
            # a catch-all handler (`except:` / `except BaseException:`)
            # guarantees every raise is intercepted.
            if not any(_catches_all(handler) for handler in stmt.handlers):
                self._edge(dispatch, escape_target)
            body_exc: Block = dispatch
        else:
            body_exc = escape_target

        body_start = self._block("try-body")
        self._edge(current, body_start)
        self.exc_stack.append(body_exc)
        body_end = self._body(stmt.body, body_start)
        self.exc_stack.pop()

        # else runs after the body completed without raising; its own
        # exceptions are NOT caught by this try's handlers.
        self.exc_stack.append(escape_target)
        if body_end is not None and stmt.orelse:
            body_end = self._body(stmt.orelse, body_end)
        if body_end is not None:
            self._edge(body_end, normal_cont)
        for handler in stmt.handlers:
            assert dispatch is not None
            handler_start = self._block("except")
            self._edge(dispatch, handler_start)
            # The handler node stands for binding `except E as name:`.
            handler_start.elements.append(handler)
            handler_end = self._body(handler.body, handler_start)
            if handler_end is not None:
                self._edge(handler_end, normal_cont)
        self.exc_stack.pop()

        if record is not None:
            self.unwind_stack.pop()
            record.add_cont(after)
            fin_end = self._body(stmt.finalbody, record.entry)
            if fin_end is not None:
                for cont in record.conts:
                    self._edge(fin_end, cont)
        return after

    def _match(self, stmt: ast.Match, current: Block) -> Block:
        self._append(current, stmt.subject)
        after = self._block("after-match")
        for case in stmt.cases:
            case_start = self._block("match-case")
            self._edge(current, case_start)
            if case.guard is not None:
                self._append(case_start, case.guard)
            case_end = self._body(case.body, case_start)
            if case_end is not None:
                self._edge(case_end, after)
        self._edge(current, after)  # no case may match
        return after


_TRY_STAR = getattr(ast, "TryStar", None)


def build_cfg(func: FuncDef) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder(func).build()
