"""Abstract domains for the hippoflow dataflow engine.

Three families of analyses run over per-function CFGs:

* :class:`ReachingDefinitions` -- which assignments may reach a point
  (the textbook may-analysis; also the template for adding domains).
* :class:`ResourceDomain` -- a resource/ownership state machine: sites
  acquired by configurable calls must reach ``close()``, a ``with``
  block, or an ownership escape (returned, passed on, stored) on every
  path, including exception edges (rule HL013).
* :class:`LockDomain` -- a must-held lock counter for
  ``with self._manifest_lock():`` scopes, tracking lock context
  objects laundered through local variables (rule HL014).
* :class:`TaintDomain` -- may-taint over local string variables built
  by f-string/%/``+``/``.format()`` interpolation (rule HL015).

All domains are intraprocedural and flow-insensitive about the heap
except for ``self.<attr>`` stores in ``__init__``, which
:class:`ResourceDomain` keeps tracking: a constructor that acquires
into an attribute owns the resource until the object is fully built,
so an exception escaping ``__init__`` must not strand it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.devtools.hippoflow.cfg import (
    CFG,
    Element,
    FuncDef,
    WithEnter,
    WithExit,
)
from repro.devtools.hippoflow.dataflow import Domain

# --------------------------------------------------------------- AST helpers


def terminal_name(node: ast.expr) -> str:
    """The final attribute/name of an expression (``close``, ``open``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def access_path(node: ast.expr) -> Optional[str]:
    """A dotted access path (``self._consumer``), or None if not one."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = access_path(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def executed_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` skipping bodies that only run later (defs/lambdas)."""
    yield node
    if isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
    ):
        return
    for child in ast.iter_child_nodes(node):
        yield from executed_nodes(child)


def evaluated_nodes(element: Element) -> Iterator[ast.AST]:
    """Nodes evaluated *at* one CFG element.

    Compound statements appear in CFGs as header/binding markers only
    (a ``For`` node stands for "bind the loop target", an
    ``ExceptHandler`` for "bind the caught exception") -- their bodies
    are separate elements, so scanning one element must not descend
    into them or every body node would be seen twice.
    """
    if isinstance(element, (WithEnter, WithExit)):
        return
    roots: list[ast.AST]
    if isinstance(element, (ast.For, ast.AsyncFor)):
        roots = [element.target]
    elif isinstance(element, ast.ExceptHandler):
        roots = [element.type] if element.type is not None else []
    else:
        roots = [element]
    for root in roots:
        yield from executed_nodes(root)


def _target_names(target: ast.expr) -> list[str]:
    """Plain names bound by an assignment target (nested tuples too)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


# ----------------------------------------------------- reaching definitions


class ReachingDefinitions(Domain):
    """Which ``(name, lineno)`` definitions may reach each point.

    State: ``frozenset[tuple[str, int]]``.  A definition is any binding
    statement -- assignment, loop target, ``with ... as``, ``except
    ... as``, ``import``, ``def``/``class``.
    """

    def initial(self) -> frozenset[tuple[str, int]]:
        return frozenset()

    def join(
        self,
        left: frozenset[tuple[str, int]],
        right: frozenset[tuple[str, int]],
    ) -> frozenset[tuple[str, int]]:
        return left | right

    def transfer(
        self, element: Element, state: frozenset[tuple[str, int]]
    ) -> frozenset[tuple[str, int]]:
        bound = self._bound_names(element)
        if not bound:
            return state
        lineno = getattr(element, "lineno", 0)
        kept = frozenset(d for d in state if d[0] not in bound)
        return kept | frozenset((name, lineno) for name in bound)

    def _bound_names(self, element: Element) -> set[str]:
        names: set[str] = set()
        if isinstance(element, ast.Assign):
            for target in element.targets:
                names.update(_target_names(target))
        elif isinstance(element, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(element.target))
        elif isinstance(element, (ast.For, ast.AsyncFor)):
            names.update(_target_names(element.target))
        elif isinstance(element, ast.ExceptHandler):
            if element.name:
                names.add(element.name)
        elif isinstance(element, WithEnter):
            if element.item.optional_vars is not None:
                names.update(_target_names(element.item.optional_vars))
        elif isinstance(element, (ast.Import, ast.ImportFrom)):
            for alias in element.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(
            element, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(element.name)
        return names

    @staticmethod
    def definitions_of(
        state: frozenset[tuple[str, int]], name: str
    ) -> set[int]:
        """The line numbers of ``name``'s reaching definitions."""
        return {lineno for bound, lineno in state if bound == name}


# ------------------------------------------------------------ resource leaks

#: Lattice ranks: a joined site keeps the worst (leakiest) status.
_RANK = {"closed": 0, "escaped": 1, "open": 2}


@dataclass(frozen=True)
class Resource:
    """One acquisition site."""

    lineno: int
    col: int
    what: str


@dataclass(frozen=True)
class AcquisitionSpec:
    """What counts as acquiring a resource.

    ``calls`` maps terminal call names (``open``, ``connect``) to a
    human description; ``methods`` maps ``(receiver terminal, method)``
    pairs (``("_writers", "pop")``) for ownership-transferring method
    calls.
    """

    calls: dict[str, str] = field(default_factory=dict)
    methods: dict[tuple[str, str], str] = field(default_factory=dict)

    def describe(self, call: ast.Call) -> Optional[str]:
        """The acquired-resource description, or None if not acquiring."""
        name = terminal_name(call.func)
        if name in self.calls:
            return self.calls[name]
        if isinstance(call.func, ast.Attribute):
            receiver = terminal_name(call.func.value)
            key = (receiver, name)
            if key in self.methods:
                return self.methods[key]
        return None


@dataclass
class ResourceState:
    """Sites with their status plus name -> possible-sites bindings."""

    sites: dict[Resource, str] = field(default_factory=dict)
    bindings: dict[str, frozenset[Resource]] = field(default_factory=dict)

    def copy(self) -> "ResourceState":
        return ResourceState(dict(self.sites), dict(self.bindings))


class ResourceDomain(Domain):
    """The HL013 resource/ownership state machine (may-leak analysis).

    A site is *open* after acquisition, *closed* once ``close()`` is
    called on a binding (or the site is managed by ``with``), and
    *escaped* when ownership demonstrably leaves the function: the
    resource is returned, passed as a call argument, stored into an
    attribute/container, or its binding is overwritten.  ``self.<attr>
    = <resource>`` in ``__init__`` stays tracked under the attribute
    path -- constructors own their acquisitions until they finish.

    The exceptional transfer applies releases and escapes but not
    acquisitions or rebindings: a call that raised never returned its
    resource, while a ``close()`` that raised has still consumed it.
    """

    CLOSE_METHODS = ("close",)

    def __init__(self, spec: AcquisitionSpec, func: FuncDef) -> None:
        self.spec = spec
        self.track_self_attrs = func.name == "__init__"

    # ------------------------------------------------------------- lattice

    def initial(self) -> ResourceState:
        return ResourceState()

    def join(self, left: ResourceState, right: ResourceState) -> ResourceState:
        sites: dict[Resource, str] = dict(left.sites)
        for site, status in right.sites.items():
            if site in sites and _RANK[sites[site]] >= _RANK[status]:
                continue
            sites[site] = status
        bindings: dict[str, frozenset[Resource]] = dict(left.bindings)
        for name, targets in right.bindings.items():
            bindings[name] = bindings.get(name, frozenset()) | targets
        return ResourceState(sites, bindings)

    # ----------------------------------------------------------- transfers

    def transfer(self, element: Element, state: ResourceState) -> ResourceState:
        state = self._apply_uses(state.copy(), element)
        if isinstance(element, WithEnter):
            return self._with_enter(element, state)
        if isinstance(element, WithExit):
            return state
        if isinstance(element, ast.Assign):
            return self._assign(element.targets, element.value, state)
        if isinstance(element, (ast.AnnAssign, ast.AugAssign)):
            if getattr(element, "value", None) is not None:
                return self._assign([element.target], element.value, state)
            return state
        if isinstance(element, (ast.For, ast.AsyncFor)):
            for name in _target_names(element.target):
                self._kill(state, name)
            return state
        if isinstance(element, ast.ExceptHandler):
            if element.name:
                self._kill(state, element.name)
            return state
        if isinstance(element, ast.Delete):
            for target in element.targets:
                for name in _target_names(target):
                    self._kill(state, name)
            return state
        if isinstance(element, ast.expr):
            self._acquire_unbound(element, state)
            return state
        if isinstance(element, ast.Expr):
            self._acquire_unbound(element.value, state)
            return state
        return state

    def transfer_exception(
        self, element: Element, state: ResourceState
    ) -> ResourceState:
        # Releases and escapes happened before the raise took over;
        # acquisitions and rebindings did not.
        return self._apply_uses(state.copy(), element)

    # ----------------------------------------------------------- mechanics

    def _with_enter(
        self, element: WithEnter, state: ResourceState
    ) -> ResourceState:
        expr = element.item.context_expr
        if isinstance(expr, ast.Call) and self.spec.describe(expr) is not None:
            # `with open(...) as f:` -- the context manager owns it.
            site = Resource(
                expr.lineno, expr.col_offset, self.spec.describe(expr) or ""
            )
            state.sites[site] = "closed"
        else:
            path = access_path(expr)
            if path is not None and path in state.bindings:
                # `with conn:` -- lifetime handed to the manager.
                for site in state.bindings[path]:
                    state.sites[site] = "closed"
        return state

    def _assign(
        self,
        targets: list[ast.expr],
        value: ast.expr,
        state: ResourceState,
    ) -> ResourceState:
        acquired = (
            self.spec.describe(value) if isinstance(value, ast.Call) else None
        )
        if acquired is not None:
            site = Resource(value.lineno, value.col_offset, acquired)
            state.sites[site] = "open"
            self._bind_site(targets, site, state)
            return state
        source = access_path(value)
        if source is not None and source in state.bindings:
            self._alias(targets, state.bindings[source], state)
            return state
        # Nested acquisitions inside a non-acquiring value leak unbound.
        self._acquire_unbound(value, state)
        for target in targets:
            for name in _target_names(target):
                self._kill(state, name)
        return state

    def _bind_site(
        self, targets: list[ast.expr], site: Resource, state: ResourceState
    ) -> None:
        for target in targets:
            key = self._binding_key(target)
            if key is not None:
                self._kill(state, key)
                state.bindings[key] = frozenset((site,))
            else:
                state.sites[site] = "escaped"

    def _alias(
        self,
        targets: list[ast.expr],
        sites: frozenset[Resource],
        state: ResourceState,
    ) -> None:
        for target in targets:
            key = self._binding_key(target)
            if key is not None:
                self._kill(state, key)
                state.bindings[key] = sites
            else:
                for site in sites:
                    if state.sites.get(site) == "open":
                        state.sites[site] = "escaped"

    def _binding_key(self, target: ast.expr) -> Optional[str]:
        """The tracking key a store binds, or None when it escapes."""
        if isinstance(target, ast.Name):
            return target.id
        if (
            self.track_self_attrs
            and isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return f"self.{target.attr}"
        return None

    def _kill(self, state: ResourceState, name: str) -> None:
        """Drop a binding; orphaned open sites become escaped."""
        dropped = state.bindings.pop(name, None)
        if not dropped:
            return
        still_bound: set[Resource] = set()
        for sites in state.bindings.values():
            still_bound.update(sites)
        for site in dropped:
            if site not in still_bound and state.sites.get(site) == "open":
                state.sites[site] = "escaped"

    def _acquire_unbound(self, expr: ast.AST, state: ResourceState) -> None:
        """Track acquisitions whose result is immediately discarded."""
        for node in executed_nodes(expr):
            if isinstance(node, ast.Call):
                what = self.spec.describe(node)
                if what is not None:
                    site = Resource(node.lineno, node.col_offset, what)
                    state.sites.setdefault(site, "open")

    def _apply_uses(
        self, state: ResourceState, element: Element
    ) -> ResourceState:
        """Apply close/escape effects of the calls inside ``element``."""
        for node in evaluated_nodes(element):
            if isinstance(node, ast.Call):
                self._apply_call(node, state)
            elif isinstance(node, ast.Return) and node.value is not None:
                self._escape_direct(node.value, state)
                if isinstance(node.value, (ast.Tuple, ast.List)):
                    for item in node.value.elts:
                        self._escape_direct(item, state)
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                value = getattr(node, "value", None)
                if value is not None:
                    self._escape_direct(value, state)
        return state

    def _apply_call(self, call: ast.Call, state: ResourceState) -> None:
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in self.CLOSE_METHODS
        ):
            receiver = access_path(call.func.value)
            if receiver is not None and receiver in state.bindings:
                for site in state.bindings[receiver]:
                    state.sites[site] = "closed"
                return
        for argument in list(call.args) + [k.value for k in call.keywords]:
            if isinstance(argument, ast.Starred):
                argument = argument.value
            self._escape_direct(argument, state)

    def _escape_direct(self, expr: ast.expr, state: ResourceState) -> None:
        """Escape bindings named *directly* by ``expr`` (or a prefix of
        it: passing ``self._consumer.close`` escapes ``self._consumer``)."""
        path = access_path(expr)
        while path:
            if path in state.bindings:
                for site in state.bindings[path]:
                    if state.sites.get(site) == "open":
                        state.sites[site] = "escaped"
                return
            path, _, _ = path.rpartition(".")

    # ------------------------------------------------------------- results

    def leaks(
        self, cfg: CFG, in_states: dict[int, ResourceState]
    ) -> list[tuple[Resource, str]]:
        """``(site, path-kind)`` pairs that may leak; kind is
        ``"exception"`` or ``"normal"`` (exception paths win)."""
        found: dict[Resource, str] = {}
        raise_state = in_states.get(cfg.raise_exit.id)
        if raise_state is not None:
            for site, status in raise_state.sites.items():
                if status == "open":
                    found[site] = "exception"
        exit_state = in_states.get(cfg.exit.id)
        if exit_state is not None:
            self_attr_sites = self._self_attr_sites(exit_state)
            for site, status in exit_state.sites.items():
                if status == "open" and site not in found:
                    # A constructor may leave self-attribute resources
                    # open on *normal* completion: the instance owns
                    # them now.
                    if site in self_attr_sites:
                        continue
                    found[site] = "normal"
        return sorted(
            found.items(), key=lambda pair: (pair[0].lineno, pair[0].col)
        )

    @staticmethod
    def _self_attr_sites(state: ResourceState) -> set[Resource]:
        sites: set[Resource] = set()
        for name, bound in state.bindings.items():
            if name.startswith("self."):
                sites.update(bound)
        return sites


# ---------------------------------------------------------------- lock state


@dataclass(frozen=True)
class LockState:
    """Must-held lock depth plus known-lock context variables."""

    depth: int = 0
    contexts: frozenset[str] = frozenset()


class LockDomain(Domain):
    """Must-analysis of ``with self._manifest_lock():`` scopes (HL014).

    ``depth`` counts definitely-held acquisitions along *every* path
    into a point (join takes the minimum).  A lock context laundered
    through a variable (``lock = self._manifest_lock()`` ...
    ``with lock:``) still counts, which the lexical HL001 cannot see.
    """

    def __init__(self, lock_call: str = "_manifest_lock") -> None:
        self.lock_call = lock_call

    def initial(self) -> LockState:
        return LockState()

    def join(self, left: LockState, right: LockState) -> LockState:
        return LockState(
            min(left.depth, right.depth), left.contexts & right.contexts
        )

    def transfer(self, element: Element, state: LockState) -> LockState:
        if isinstance(element, WithEnter):
            if self._is_lock(element.item.context_expr, state):
                return LockState(state.depth + 1, state.contexts)
            return state
        if isinstance(element, WithExit):
            if self._is_lock(element.item.context_expr, state):
                return LockState(max(0, state.depth - 1), state.contexts)
            return state
        if isinstance(element, ast.Assign):
            contexts = set(state.contexts)
            names: set[str] = set()
            for target in element.targets:
                names.update(_target_names(target))
            if (
                isinstance(element.value, ast.Call)
                and terminal_name(element.value.func) == self.lock_call
            ):
                contexts.update(names)
            else:
                contexts.difference_update(names)
            return LockState(state.depth, frozenset(contexts))
        bound = _target_names(getattr(element, "target", ast.Constant(None)))
        if bound and isinstance(element, (ast.For, ast.AsyncFor, ast.AugAssign)):
            return LockState(state.depth, state.contexts - set(bound))
        return state

    def _is_lock(self, expr: ast.expr, state: LockState) -> bool:
        if isinstance(expr, ast.Call):
            return terminal_name(expr.func) == self.lock_call
        return isinstance(expr, ast.Name) and expr.id in state.contexts

    @staticmethod
    def held(state: LockState) -> bool:
        """Whether the lock is definitely held in ``state``."""
        return state.depth > 0


# --------------------------------------------------------------- SQL taint


class TaintDomain(Domain):
    """May-taint over local names holding interpolated strings (HL015).

    A name becomes tainted when assigned from an f-string with
    substitutions, ``%``-formatting, ``.format()`` on string text, or
    ``+`` concatenation that mixes string text with non-constant parts;
    taint propagates through copies and augmented concatenation and
    dies on reassignment from clean values.
    """

    def initial(self) -> frozenset[str]:
        return frozenset()

    def join(self, left: frozenset[str], right: frozenset[str]) -> frozenset[str]:
        return left | right

    def transfer(self, element: Element, state: frozenset[str]) -> frozenset[str]:
        if isinstance(element, ast.Assign):
            names: set[str] = set()
            for target in element.targets:
                names.update(_target_names(target))
            if self.taints(element.value, state):
                return state | names
            return state - names
        if isinstance(element, ast.AugAssign):
            names = set(_target_names(element.target))
            if not names:
                return state
            already = bool(names & state)
            if already or self.taints(element.value, state):
                return state | names
            return state
        if isinstance(element, ast.AnnAssign) and element.value is not None:
            names = set(_target_names(element.target))
            if self.taints(element.value, state):
                return state | names
            return state - names
        if isinstance(element, (ast.For, ast.AsyncFor)):
            return state - set(_target_names(element.target))
        if isinstance(element, ast.ExceptHandler) and element.name:
            return state - {element.name}
        return state

    def taints(self, expr: ast.expr, state: frozenset[str]) -> bool:
        """Whether evaluating ``expr`` yields interpolated string text."""
        if isinstance(expr, ast.Name):
            return expr.id in state
        if isinstance(expr, ast.JoinedStr):
            return any(
                isinstance(part, ast.FormattedValue) for part in expr.values
            )
        if isinstance(expr, ast.IfExp):
            return self.taints(expr.body, state) or self.taints(
                expr.orelse, state
            )
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, ast.Mod):
                return self._stringish(expr.left) or self.taints(
                    expr.left, state
                )
            if isinstance(expr.op, ast.Add):
                if self.taints(expr.left, state) or self.taints(
                    expr.right, state
                ):
                    return True
                both_const = self._const_str(expr.left) and self._const_str(
                    expr.right
                )
                return not both_const and (
                    self._stringish(expr.left) or self._stringish(expr.right)
                )
            return False
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "format"
        ):
            return self._stringish(expr.func.value) or self.taints(
                expr.func.value, state
            )
        return False

    def _stringish(self, node: ast.expr) -> bool:
        if self._const_str(node):
            return True
        if isinstance(node, ast.JoinedStr):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return self._stringish(node.left) or self._stringish(node.right)
        return False

    @staticmethod
    def _const_str(node: ast.expr) -> bool:
        return isinstance(node, ast.Constant) and isinstance(node.value, str)
