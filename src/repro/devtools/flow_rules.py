"""Flow-sensitive hippolint rules (HL013-HL016) built on hippoflow.

The lexical rules in :mod:`repro.devtools.rules` check what a line
*says*; the rules here check what a function *does* across branches,
early returns and exception edges, by running abstract domains from
:mod:`repro.devtools.hippoflow.domains` over per-function CFGs.

Each rule pre-filters lexically (no CFG is built for a function that
cannot possibly produce a finding), which keeps a full-tree run well
inside the analyzer time budget asserted in
``benchmarks/bench_hippolint.py``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Optional

from repro.devtools.framework import Finding, Rule, SourceModule, register
from repro.devtools.hippoflow.cfg import FuncDef, build_cfg
from repro.devtools.hippoflow.dataflow import analyze, replay
from repro.devtools.hippoflow.domains import (
    AcquisitionSpec,
    LockDomain,
    ResourceDomain,
    TaintDomain,
    evaluated_nodes,
    executed_nodes,
    terminal_name,
)
from repro.devtools.rules import _functions


def _executed_calls(func: FuncDef) -> Iterator[ast.Call]:
    """Calls in ``func``'s own body (nested defs analyze separately)."""
    for statement in func.body:
        for node in executed_nodes(statement):
            if isinstance(node, ast.Call):
                yield node


@register
class ResourceLeakRule(Rule):
    """HL013: acquired resources reach close() on every path.

    File handles, backend connections and feed consumers acquired in a
    function must be closed, transferred to a ``with`` block, or
    escape ownership (returned, stored, passed on) on *all* paths --
    including the exception edges the lexical rules cannot see.  The
    classic bug shape: ``writer = self._writers.pop(name)`` followed by
    a ``flush()``/``fsync()`` that raises before ``close()`` runs.
    """

    id = "HL013"
    name = "resource-leak"
    summary = (
        "acquired file handles / connections / feed consumers must be"
        " closed or escape ownership on every path, including exception"
        " edges"
    )
    rationale = (
        "PR 9 flow analysis; dynamic twin: tests/engine/test_feed_leaks.py"
        " pins the error-path cleanup this rule proves structurally"
    )

    SPEC = AcquisitionSpec(
        calls={
            "open": "file handle from open()",
            "connect": "connection from connect()",
            "consumer": "feed consumer from consumer()",
        },
        methods={
            ("_writers", "pop"): "segment writer popped from self._writers",
        },
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for func in _functions(module.tree):
            if not self._acquires_anything(func):
                continue
            cfg = build_cfg(func)
            domain = ResourceDomain(self.SPEC, func)
            in_states = analyze(cfg, domain)
            for site, kind in domain.leaks(cfg, in_states):
                where = (
                    "an exception path"
                    if kind == "exception"
                    else "a fall-through path"
                )
                yield (
                    site.lineno,
                    site.col,
                    f"{site.what} may never be closed on {where} out of"
                    f" {func.name}(); close it in try/finally or hand"
                    " ownership off before anything can raise",
                )

    def _acquires_anything(self, func: FuncDef) -> bool:
        return any(
            self.SPEC.describe(call) is not None
            for call in _executed_calls(func)
        )


@register
class LockStateRule(Rule):
    """HL014: manifest mutations see the lock *held*, not just nearby.

    HL001 checks that guarded calls are lexically inside ``with
    self._manifest_lock():``; this rule runs a must-held analysis over
    the CFG instead, so a lock context laundered through a variable
    still counts, and a path that reaches the mutation with the lock
    released (early return, conditional acquisition, exception edge
    past the ``with``) is caught.
    """

    id = "HL014"
    name = "lock-state"
    summary = (
        "manifest-state helpers must execute with self._manifest_lock()"
        " definitely held on every CFG path, not merely lexically nearby"
    )
    rationale = (
        "PR 9 flow analysis; dynamic twin: tests/engine/test_feed.py"
        " multi-writer crash-recovery suite"
    )

    GUARDED = ("_merge_disk_retention", "_sweep_orphans")

    def applies_to(self, module: SourceModule) -> bool:
        return module.is_module("engine/feed.py")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for func in _functions(module.tree):
            if not any(
                self._guarded_reason(call) is not None
                for call in _executed_calls(func)
            ):
                continue
            cfg = build_cfg(func)
            domain = LockDomain()
            in_states = analyze(cfg, domain)
            for element, state in replay(cfg, domain, in_states):
                if LockDomain.held(state):
                    continue
                if isinstance(element, ast.AST):
                    for node in evaluated_nodes(element):
                        if not isinstance(node, ast.Call):
                            continue
                        reason = self._guarded_reason(node)
                        if reason is not None:
                            yield (
                                node.lineno,
                                node.col_offset,
                                f"{reason} can execute with"
                                " self._manifest_lock() not held on some"
                                " path into this call",
                            )

    def _guarded_reason(self, call: ast.Call) -> Optional[str]:
        target = terminal_name(call.func)
        if target in self.GUARDED:
            return f"{target}() mutates manifest/segment state and"
        if target == "_atomic_json" and any(
            "MANIFEST" in ast.unparse(argument) for argument in call.args
        ):
            return "the manifest write via _atomic_json()"
        return None


@register
class TaintedSQLRule(Rule):
    """HL015: interpolated SQL must not *flow* into an executor.

    HL012 flags interpolation at the execute call site itself; this
    rule tracks taint through intermediate local variables, so
    ``query = f"..."; ...; cursor.execute(query)`` is caught even when
    the interpolation and the sink are many statements apart.
    """

    id = "HL015"
    name = "sql-taint"
    summary = (
        "strings built by f-string/%/+/.format() interpolation must not"
        " flow through variables into execute/executemany/query sinks"
    )
    rationale = (
        "backend pushdown lowering contract; dynamic twin: the"
        " differential oracle suite in tests/backends/"
    )

    EXECUTORS = (
        "execute",
        "executemany",
        "executescript",
        "execute_script",
        "query",
    )
    EXEMPT_MODULES = ("ra/to_sql.py",)

    def applies_to(self, module: SourceModule) -> bool:
        return module.in_package() and not module.is_module(
            *self.EXEMPT_MODULES
        )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for func in _functions(module.tree):
            if not any(
                terminal_name(call.func) in self.EXECUTORS
                and call.args
                and isinstance(call.args[0], ast.Name)
                for call in _executed_calls(func)
            ):
                continue
            cfg = build_cfg(func)
            domain = TaintDomain()
            in_states = analyze(cfg, domain)
            for element, state in replay(cfg, domain, in_states):
                if not isinstance(element, ast.AST):
                    continue
                for node in evaluated_nodes(element):
                    if (
                        isinstance(node, ast.Call)
                        and terminal_name(node.func) in self.EXECUTORS
                        and node.args
                        and isinstance(node.args[0], ast.Name)
                        and node.args[0].id in state
                    ):
                        yield (
                            node.lineno,
                            node.col_offset,
                            f"variable '{node.args[0].id}' holds"
                            " interpolated SQL and reaches an execute"
                            " sink; render through ra/to_sql.py"
                            " parameterization instead",
                        )


@register
class LayeringRule(Rule):
    """HL016: module-level imports respect the LAYERS contract.

    The allowed dependency set for every top-level package under
    ``repro`` is pinned in
    :data:`repro.devtools.hippoflow.layering.LAYERS`; an import that
    crosses layers the wrong way (``engine`` -> ``conflicts``, runtime
    code -> ``devtools``, ...) fails here, per file, before CI's
    whole-tree cycle check even runs.
    """

    id = "HL016"
    name = "layering"
    summary = (
        "module-level imports must respect the layer contract in"
        " repro.devtools.hippoflow.layering.LAYERS"
    )
    rationale = (
        "PR 9 import-graph analysis; whole-tree twin:"
        " `python -m repro.devtools.hippoflow.layering src/repro` in CI"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        # Imported lazily: layering doubles as a ``python -m`` CLI, and
        # a module-level import here (reached from devtools.__init__)
        # would make runpy warn about the double import on every run.
        from repro.devtools.hippoflow.layering import check_module

        package_path = module.package_path
        parts = Path(package_path).with_suffix("").parts
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        name = ".".join(("repro", *parts)) if parts else "repro"
        is_package = Path(package_path).name == "__init__.py"
        for lineno, col, message in check_module(name, module.tree, is_package):
            yield lineno, col, message
