"""``python -m repro.devtools`` runs the hippolint CLI."""

import sys

from repro.devtools.cli import main

if __name__ == "__main__":
    sys.exit(main())
