"""The hippolint rule framework: registry, module model, file driver.

A :class:`Rule` inspects one parsed module and yields findings.  Rules are
registered by id (``HL001`` ...) in a module-level registry; the driver
parses each file once, asks every applicable rule for findings, and drops
those covered by suppression comments.

Paths are normalised to a *package path* -- the part under the ``repro``
package (``engine/feed.py``, ``conflicts/shard.py``) -- so rules can scope
themselves to the modules whose invariants they encode regardless of where
the tree is checked out.  Files outside the package (tests, fixtures run
through :func:`analyze_source`) get an empty package path and are only
seen by rules that opt into them.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.devtools.diagnostics import (
    Diagnostic,
    Suppressions,
    parse_suppressions,
)

#: Pseudo rule id for files that fail to parse.
PARSE_ERROR_ID = "HL000"

#: A finding as yielded by a rule: (line, col, message).
Finding = tuple[int, int, str]


@dataclass
class SourceModule:
    """One parsed source file plus the metadata rules scope on."""

    path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @property
    def package_path(self) -> str:
        """The path under the ``repro`` package, or ``""`` outside it."""
        parts = Path(self.path).parts
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == "repro":
                return "/".join(parts[index + 1 :])
        return ""

    def in_package(self) -> bool:
        """Whether the module lives inside ``repro`` at all."""
        return bool(self.package_path)

    def is_module(self, *package_paths: str) -> bool:
        """Whether this module is one of the named package paths."""
        return self.package_path in package_paths

    def under(self, *prefixes: str) -> bool:
        """Whether the package path starts with any of ``prefixes``."""
        return any(self.package_path.startswith(p) for p in prefixes)


class Rule:
    """Base class for hippolint rules.

    Subclasses define ``id``, ``name``, ``summary`` and ``rationale`` class
    attributes, restrict themselves via :meth:`applies_to`, and yield
    ``(line, col, message)`` findings from :meth:`check`.
    """

    id: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""

    def applies_to(self, module: SourceModule) -> bool:
        """Whether this rule wants to see ``module`` (default: repro only)."""
        return module.in_package()

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Yield findings for ``module``."""
        raise NotImplementedError
        yield  # pragma: no cover


_REGISTRY: dict[str, Rule] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = rule_class()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {rule_class.__name__} lacks an id or name")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_class


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look a rule up by id."""
    return _REGISTRY[rule_id]


def analyze_module(
    module: SourceModule, select: Optional[Iterable[str]] = None
) -> list[Diagnostic]:
    """Run every applicable rule over one parsed module."""
    selected = set(select) if select is not None else None
    diagnostics: list[Diagnostic] = []
    for rule in all_rules():
        if selected is not None and rule.id not in selected:
            continue
        if not rule.applies_to(module):
            continue
        for line, col, message in rule.check(module):
            if module.suppressions.covers(rule.id, line):
                continue
            diagnostics.append(
                Diagnostic(module.path, line, col, rule.id, rule.name, message)
            )
    diagnostics.sort(key=lambda d: (d.line, d.col, d.rule_id))
    return diagnostics


def analyze_source(
    source: str, path: str, select: Optional[Iterable[str]] = None
) -> list[Diagnostic]:
    """Analyze source text as though it lived at ``path``.

    This is how fixture tests exercise path-scoped rules: the fixture text
    is analyzed under a virtual path such as ``src/repro/engine/feed.py``.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Diagnostic(
                path,
                error.lineno or 1,
                (error.offset or 1) - 1,
                PARSE_ERROR_ID,
                "parse-error",
                f"file does not parse: {error.msg}",
            )
        ]
    module = SourceModule(path, source, tree, parse_suppressions(source))
    return analyze_module(module, select)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Walk ``paths`` yielding checkable ``.py`` files.

    Directories whose name starts with ``.`` or ``_`` are skipped, which
    keeps caches (``__pycache__``), virtualenvs and the deliberately
    violating lint fixtures (``tests/devtools/_fixtures``) out of scope.
    """
    for entry in paths:
        path = Path(entry)
        if path.is_file():
            if path.suffix == ".py":
                yield str(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if not name.startswith((".", "_"))
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield str(Path(dirpath) / filename)


def analyze_paths(
    paths: Iterable[str], select: Optional[Iterable[str]] = None
) -> tuple[list[Diagnostic], int]:
    """Analyze every python file under ``paths``.

    Returns the diagnostics plus the number of files inspected.
    """
    diagnostics: list[Diagnostic] = []
    checked = 0
    for file_path in iter_python_files(paths):
        checked += 1
        try:
            source = Path(file_path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            diagnostics.append(
                Diagnostic(
                    file_path,
                    1,
                    0,
                    PARSE_ERROR_ID,
                    "parse-error",
                    f"cannot read file: {error}",
                )
            )
            continue
        diagnostics.extend(analyze_source(source, file_path, select))
    return diagnostics, checked
