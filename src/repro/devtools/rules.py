"""The repo-specific hippolint rules.

Each rule encodes an invariant of the durability/concurrency protocol that
one of the hardening passes (PRs 2-5) established the hard way.  The
``rationale`` strings name the dynamic harness that checks the same
invariant at runtime; the rules here make the corresponding *structural*
property cheap to check on every change.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.devtools.framework import Finding, Rule, SourceModule, register

# --------------------------------------------------------------- AST helpers


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name of a call target (``os.replace``, ``print``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


def _terminal(node: ast.expr) -> str:
    """The final attribute/name of a call target (``replace``, ``print``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _walk_local(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function/class bodies.

    The nested definitions themselves are yielded (so callers see that a
    closure exists) but their bodies belong to a different execution scope
    and are analyzed on their own.
    """
    yield node
    if isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
    ):
        return
    for child in ast.iter_child_nodes(node):
        yield from _walk_local(child)


def _local_body(func: ast.AST) -> Iterator[ast.AST]:
    """Nodes of a function's own body, excluding nested scopes."""
    for child in ast.iter_child_nodes(func):
        yield from _walk_local(child)


def _functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _calls_named(nodes: Iterator[ast.AST], *names: str) -> list[ast.Call]:
    return [
        node
        for node in nodes
        if isinstance(node, ast.Call) and _terminal(node.func) in names
    ]


# -------------------------------------------------------------------- rules


@register
class ManifestLockRule(Rule):
    """HL001: manifest state in ``engine/feed.py`` mutates under the flock.

    PR 4's crash tests found torn manifests when retention merged segment
    lists outside the lock; every call that folds or rewrites manifest
    state must be lexically inside ``with self._manifest_lock():``.
    """

    id = "HL001"
    name = "manifest-lock"
    summary = (
        "manifest-state helpers in engine/feed.py must run inside"
        " `with self._manifest_lock():`"
    )
    rationale = (
        "PR 4 writer-side checkpoints; dynamic twin:"
        " tests/engine/test_feed.py crash-recovery and multi-writer tests"
    )

    GUARDED = ("_merge_disk_retention", "_sweep_orphans")

    def applies_to(self, module: SourceModule) -> bool:
        return module.is_module("engine/feed.py")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        yield from self._visit(module.tree, lock_depth=0)

    def _visit(self, node: ast.AST, lock_depth: int) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            lock_depth = 0  # the body runs later, outside this lock scope
        if isinstance(node, ast.With):
            if any(
                isinstance(item.context_expr, ast.Call)
                and _terminal(item.context_expr.func) == "_manifest_lock"
                for item in node.items
            ):
                lock_depth += 1
        if isinstance(node, ast.Call) and lock_depth == 0:
            target = _terminal(node.func)
            if target in self.GUARDED:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{target}() mutates manifest/segment state and must be"
                    " called inside `with self._manifest_lock():`",
                )
            elif target == "_atomic_json" and any(
                "MANIFEST" in ast.unparse(arg) for arg in node.args
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "manifest writes via _atomic_json must happen inside"
                    " `with self._manifest_lock():`",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._visit(child, lock_depth)


@register
class FsyncBeforeRenameRule(Rule):
    """HL002: durability barrier before the rename that publishes a file.

    ``os.replace``/``os.rename`` make a file visible atomically, but the
    atomicity is worthless if the bytes being published were never
    fsync'ed; a crash can then publish a hole.  In ``engine/feed.py`` the
    same ordering applies one level up: sealed segment data must hit disk
    (``_write_sealed``) before the manifest commit that names it
    (``_store_manifest``).
    """

    id = "HL002"
    name = "fsync-before-rename"
    summary = (
        "os.replace/os.rename must be preceded by os.fsync in the same"
        " function; segment writes must precede the manifest commit"
    )
    rationale = (
        "PR 3/4 durability work; dynamic twin: torn-write and reopen"
        " tests in tests/engine/test_feed.py"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return module.under("engine/", "conflicts/")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for func in _functions(module.tree):
            renames = [
                call
                for call in _calls_named(_local_body(func), "replace", "rename")
                if _dotted(call.func) in ("os.replace", "os.rename")
            ]
            if renames:
                fsyncs = _calls_named(_local_body(func), "fsync")
                first_fsync = min(
                    (call.lineno for call in fsyncs), default=None
                )
                for call in renames:
                    if first_fsync is None or call.lineno < first_fsync:
                        yield (
                            call.lineno,
                            call.col_offset,
                            f"{_dotted(call.func)}() publishes a file whose"
                            " contents were not fsync'ed first; call"
                            " os.fsync on the handle before renaming",
                        )
            if module.is_module("engine/feed.py"):
                seals = _calls_named(_local_body(func), "_write_sealed")
                commits = _calls_named(_local_body(func), "_store_manifest")
                if seals and commits:
                    first_seal = min(call.lineno for call in seals)
                    first_commit = min(call.lineno for call in commits)
                    if first_commit < first_seal:
                        yield (
                            first_commit,
                            0,
                            "_store_manifest() names segments that"
                            " _write_sealed() has not persisted yet; seal"
                            " segment data before committing the manifest",
                        )


@register
class ApplyThenCommitRule(Rule):
    """HL003: consumers apply polled records before committing offsets.

    Committing first turns a crash between commit and apply into silent
    record loss -- the exactly-once contract the replica equivalence
    harness depends on.  The rule looks for a ``poll()``/``commit()`` pair
    on the same receiver and requires evidence of application in between:
    a use of the polled records or a call whose name signals application
    (apply/detect/restore/bootstrap/seek/replay/rebuild).
    """

    id = "HL003"
    name = "apply-then-commit"
    summary = (
        "between consumer.poll() and consumer.commit() the polled records"
        " must be applied (no commit-then-apply orderings)"
    )
    rationale = (
        "PR 3 replica protocol; dynamic twin:"
        " tests/conflicts/test_replica_equivalence.py"
    )

    MARKERS = (
        "apply",
        "detect",
        "restore",
        "bootstrap",
        "seek",
        "replay",
        "rebuild",
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for func in _functions(module.tree):
            nodes = list(_local_body(func))
            polls: list[tuple[int, str, set[str]]] = []
            for node in nodes:
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and _terminal(node.value.func) == "poll"
                    and isinstance(node.value.func, ast.Attribute)
                ):
                    receiver = ast.unparse(node.value.func.value)
                    targets: set[str] = set()
                    for target in node.targets:
                        for leaf in ast.walk(target):
                            if isinstance(leaf, ast.Name):
                                targets.add(leaf.id)
                    polls.append((node.lineno, receiver, targets))
            if not polls:
                continue
            commits = [
                call
                for call in _calls_named(iter(nodes), "commit")
                if isinstance(call.func, ast.Attribute)
            ]
            for commit in commits:
                receiver = ast.unparse(commit.func.value)
                matching = [p for p in polls if p[1] == receiver]
                if not matching:
                    continue
                before = [p for p in matching if p[0] <= commit.lineno]
                if not before:
                    yield (
                        commit.lineno,
                        commit.col_offset,
                        f"{receiver}.commit() runs before {receiver}.poll();"
                        " apply records between poll and commit",
                    )
                    continue
                poll_line, _, targets = max(before, key=lambda p: p[0])
                if self._applied_between(nodes, poll_line, commit.lineno, targets):
                    continue
                yield (
                    commit.lineno,
                    commit.col_offset,
                    f"{receiver}.commit() follows poll() with no evidence the"
                    " polled records were applied in between; apply first so"
                    " a crash after commit cannot lose records",
                )

    def _applied_between(
        self,
        nodes: Sequence[ast.AST],
        poll_line: int,
        commit_line: int,
        targets: set[str],
    ) -> bool:
        for node in nodes:
            lineno = getattr(node, "lineno", None)
            if lineno is None or not (poll_line < lineno <= commit_line):
                continue
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in targets
            ):
                return True
            if isinstance(node, ast.Call):
                name = _dotted(node.func).lower()
                if any(marker in name for marker in self.MARKERS):
                    return True
        return False


@register
class HypergraphEncapsulationRule(Rule):
    """HL004: ``ConflictHypergraph`` internals stay inside their module.

    The incremental maintenance and shard merge paths must go through
    ``add_edge``/``remove_edge`` so invariants (incidence maps, edge
    labels, position index) stay in sync; poking ``_position`` or
    ``_incidence`` from outside desynchronizes them silently.
    """

    id = "HL004"
    name = "hypergraph-encapsulation"
    summary = (
        "ConflictHypergraph internals (_position/_incidence/_edges) are"
        " only touched inside conflicts/hypergraph.py; edges/edge_labels"
        " are not mutated from outside"
    )
    rationale = (
        "PR 5 shard merge audit; dynamic twin:"
        " tests/conflicts/test_incremental.py shadow-graph equivalence"
    )

    PRIVATE = ("_position", "_incidence", "_edges")
    PUBLIC = ("edges", "edge_labels")
    MUTATORS = (
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
    )

    def applies_to(self, module: SourceModule) -> bool:
        return module.in_package() and not module.is_module(
            "conflicts/hypergraph.py"
        )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                if node.attr in self.PRIVATE:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"access to ConflictHypergraph internal"
                        f" `{node.attr}` outside conflicts/hypergraph.py;"
                        " use add_edge()/remove_edge()",
                    )
                elif node.attr in self.PUBLIC and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"rebinding `{node.attr}` outside"
                        " conflicts/hypergraph.py bypasses the hypergraph"
                        " mutation API",
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.MUTATORS
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr in self.PUBLIC
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"mutating `{node.func.value.attr}.{node.func.attr}()`"
                    " outside conflicts/hypergraph.py bypasses"
                    " add_edge()/remove_edge()",
                )


@register
class NormalizedKeysRule(Rule):
    """HL005: relation keys go through the lowercase normalizers.

    Topics, vertices and repair keys are all keyed by lower-cased relation
    name; PR 4/5 fixed casing mismatches where ``Vertex("Emp", ...)`` and
    ``vertex("emp", ...)`` silently referred to different facts.  Direct
    ``Vertex(...)``/``Fact(...)`` construction outside the defining
    modules needs an audited suppression explaining why the relation is
    already lower-case.
    """

    id = "HL005"
    name = "normalized-relation-keys"
    summary = (
        "construct vertices/facts via the lowercasing helpers vertex()"
        " and fact(), not the raw Vertex()/Fact() tuples"
    )
    rationale = (
        "PR 4/5 casing audits; dynamic twin: mixed-case relation tests in"
        " tests/conflicts/test_shard.py and tests/repairs/"
    )

    RAW = ("Vertex", "Fact")
    EXEMPT = ("conflicts/hypergraph.py", "core/facts.py")

    def applies_to(self, module: SourceModule) -> bool:
        return module.in_package() and not module.is_module(*self.EXEMPT)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _terminal(node.func) in self.RAW:
                raw = _terminal(node.func)
                helper = raw.lower()
                yield (
                    node.lineno,
                    node.col_offset,
                    f"raw {raw}(...) does not lower-case the relation; use"
                    f" {helper}(...) or suppress with a note proving the"
                    " relation is already normalized",
                )


@register
class ExceptionDisciplineRule(Rule):
    """HL006: no bare ``except`` and no swallowed feed errors.

    A bare ``except:`` catches ``KeyboardInterrupt``/``SystemExit``; and
    inside the durability core, silently dropping :class:`FeedError` (or
    all of ``Exception``) hides exactly the failures the protocol exists
    to surface.
    """

    id = "HL006"
    name = "exception-discipline"
    summary = (
        "no bare `except:`; engine/ and conflicts/ may not swallow"
        " FeedError/Exception with a pass-only handler or"
        " contextlib.suppress"
    )
    rationale = (
        "PR 3/4 failure-injection tests; dynamic twin: lost-record"
        " surfacing asserts in tests/engine/test_feed.py"
    )

    BROAD = ("FeedError", "Exception", "BaseException")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        core = module.under("engine/", "conflicts/")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "bare `except:` catches KeyboardInterrupt and"
                        " SystemExit; name the exceptions",
                    )
                elif core and self._is_broad(node.type) and self._swallows(node):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "handler swallows a broad exception class in the"
                        " durability core; handle it or let it propagate",
                    )
            if (
                core
                and isinstance(node, ast.Call)
                and _terminal(node.func) == "suppress"
                and any(self._is_broad(arg) for arg in node.args)
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "contextlib.suppress of a broad exception class hides"
                    " feed failures; suppress specific OS errors only",
                )

    def _is_broad(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(elt) for elt in node.elts)
        return _terminal(node) in self.BROAD

    def _swallows(self, handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue
            return False
        return True


@register
class StrictWireJsonRule(Rule):
    """HL007: JSON crossing the feed wire refuses NaN/Infinity.

    ``json.dumps(float("nan"))`` happily emits ``NaN``, which is not JSON
    and round-trips to a parse error on replay.  Every serialization in
    the engine must pass ``allow_nan=False`` so non-finite floats fail at
    write time (the value codec encodes them explicitly instead).
    """

    id = "HL007"
    name = "strict-wire-json"
    summary = (
        "json.dump/json.dumps in engine/ and conflicts/ must pass"
        " allow_nan=False (non-finite floats go through encode_value)"
    )
    rationale = (
        "PR 3 value codec; dynamic twin: non-finite float round-trip"
        " tests in tests/engine/test_feed.py"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return module.under("engine/", "conflicts/")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _dotted(node.func) not in ("json.dump", "json.dumps"):
                continue
            strict = any(
                keyword.arg == "allow_nan"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
                for keyword in node.keywords
            )
            if not strict:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{_dotted(node.func)}() without allow_nan=False can"
                    " emit NaN/Infinity, which is unparseable on replay;"
                    " non-finite floats must go through encode_value",
                )


@register
class DeterministicPlanningRule(Rule):
    """HL008: planning code is deterministic.

    Plan choice, shard assignment and rewriting must be pure functions of
    their inputs so the equivalence harnesses can compare runs;
    wall-clock time, ``random``, ``uuid`` and salted ``hash()`` all break
    that.  (``time.perf_counter`` is fine: it only *measures*.)
    """

    id = "HL008"
    name = "deterministic-planning"
    summary = (
        "no random/uuid imports, time.time()/datetime.now()/os.urandom()"
        " or builtin hash() in planner, plan, stats, shard and rewriting"
        " modules"
    )
    rationale = (
        "PR 5 sharded workers; dynamic twin: plan_assignment determinism"
        " asserts in tests/conflicts/test_shard.py"
    )

    MODULES = (
        "engine/planner.py",
        "engine/plan.py",
        "engine/stats.py",
        "conflicts/shard.py",
        "rewriting/rewrite.py",
    )
    FORBIDDEN_CALLS = (
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "date.today",
        "os.urandom",
    )

    def applies_to(self, module: SourceModule) -> bool:
        return module.is_module(*self.MODULES)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in ("random", "uuid"):
                        yield (
                            node.lineno,
                            node.col_offset,
                            f"import of `{alias.name}` in deterministic"
                            " planning code",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in ("random", "uuid"):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"import from `{node.module}` in deterministic"
                        " planning code",
                    )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted in self.FORBIDDEN_CALLS:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"`{dotted}()` makes planning output depend on the"
                        " wall clock",
                    )
                elif dotted == "hash":
                    yield (
                        node.lineno,
                        node.col_offset,
                        "builtin hash() is salted per process; use sort_key"
                        " or an explicit stable key",
                    )


@register
class TypedDefsRule(Rule):
    """HL009: every function in ``src/repro`` is fully annotated.

    This is the locally runnable face of the ``mypy --strict`` gate:
    strict mode's first demand is complete signatures, and this rule
    enforces exactly that with no third-party toolchain.
    """

    id = "HL009"
    name = "typed-defs"
    summary = (
        "every def in src/repro annotates all parameters (except"
        " self/cls) and the return type"
    )
    rationale = (
        "mypy --strict gate (tentpole); CI runs the full checker, this"
        " rule keeps signatures complete without the toolchain"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for func in _functions(module.tree):
            missing: list[str] = []
            args = func.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if arg.annotation is None and arg.arg not in ("self", "cls"):
                    missing.append(arg.arg)
            if args.vararg is not None and args.vararg.annotation is None:
                missing.append(f"*{args.vararg.arg}")
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append(f"**{args.kwarg.arg}")
            if func.returns is None:
                missing.append("return")
            if missing:
                yield (
                    func.lineno,
                    func.col_offset,
                    f"def {func.name}() is missing annotations for:"
                    f" {', '.join(missing)}",
                )


@register
class NoPrintRule(Rule):
    """HL010: library code never prints.

    Only the interactive shell and the smoke benchmark write to stdout;
    a stray ``print`` in the engine corrupts the shell protocol and hides
    in test output.
    """

    id = "HL010"
    name = "no-print"
    summary = "print() only in cli.py, smoke.py and devtools/"
    rationale = "shell protocol hygiene; keeps engine output machine-clean"

    EXEMPT_MODULES = ("cli.py", "smoke.py", "benchmarks/smoke.py")

    def applies_to(self, module: SourceModule) -> bool:
        return (
            module.in_package()
            and not module.is_module(*self.EXEMPT_MODULES)
            and not module.under("devtools/")
        )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "print() in library code; raise, log via the caller, or"
                    " return the value instead",
                )


@register
class PublicDocstringsRule(Rule):
    """HL011: contract-bearing modules document every public def.

    The feed, the planner (statement/plan cache), the shard merge view
    and the rewriting facade all carry concurrency or invalidation
    contracts that are invisible in signatures -- when may a cached plan
    be reused, who may mutate under which lock, how fresh a merged graph
    is.  A public def without a docstring in these modules is a contract
    nobody wrote down.
    """

    id = "HL011"
    name = "public-docstrings"
    summary = (
        "every public class/function in engine/feed.py, engine/planner.py,"
        " conflicts/shard.py and rewriting/__init__.py has a docstring"
    )
    rationale = (
        "docs/ARCHITECTURE.md cites these contracts; dynamic twin: the"
        " plan-cache invalidation suite in tests/engine/test_plan_cache.py"
        " exercises what the docstrings promise"
    )

    MODULES = (
        "engine/feed.py",
        "engine/planner.py",
        "conflicts/shard.py",
        "rewriting/__init__.py",
    )

    def applies_to(self, module: SourceModule) -> bool:
        return module.is_module(*self.MODULES)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        yield from self._walk(module.tree.body)

    def _walk(self, body: list[ast.stmt]) -> Iterator[Finding]:
        """Public defs at module/class level (nested functions are
        implementation detail and exempt, as is anything underscored)."""
        for node in body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            kind = "class" if isinstance(node, ast.ClassDef) else "def"
            if ast.get_docstring(node) is None:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"public {kind} {node.name} has no docstring; state its"
                    " contract (concurrency, invalidation, errors)",
                )
            if isinstance(node, ast.ClassDef):
                yield from self._walk(node.body)


@register
class NoInterpolatedSQLRule(Rule):
    """HL012: SQL handed to an executor is never assembled by string
    interpolation.

    The backend layer's lowering contract (``ra/to_sql.py``) renders
    every literal as a bound parameter and every identifier through the
    quoting helpers; an f-string / ``%`` / ``+`` / ``.format()`` first
    argument at an execute call site bypasses both, reintroducing
    injection and type-fidelity bugs the differential oracle suite
    exists to rule out.  ``ra/to_sql.py`` itself is the one sanctioned
    assembly point.
    """

    id = "HL012"
    name = "no-interpolated-sql"
    summary = (
        "execute/executemany/query call sites in src/repro never build"
        " SQL via f-string, %, + or .format(); render through"
        " ra/to_sql.py instead"
    )
    rationale = (
        "backend pushdown lowering contract; dynamic twin: the"
        " differential oracle suite in tests/backends/ compares every"
        " backend's answers against native execution"
    )

    EXECUTORS = (
        "execute",
        "executemany",
        "executescript",
        "execute_script",
        "query",
    )
    EXEMPT_MODULES = ("ra/to_sql.py",)

    def applies_to(self, module: SourceModule) -> bool:
        return module.in_package() and not module.is_module(
            *self.EXEMPT_MODULES
        )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if _terminal(node.func) not in self.EXECUTORS:
                continue
            how = self._interpolation(node.args[0])
            if how is not None:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"SQL built by {how} at an execute call site; use the"
                    " parameterized renderers / quoting helpers in"
                    " ra/to_sql.py",
                )

    def _interpolation(self, arg: ast.expr) -> str | None:
        """How ``arg`` interpolates text, or None when it does not."""
        if isinstance(arg, ast.JoinedStr) and any(
            isinstance(part, ast.FormattedValue) for part in arg.values
        ):
            return "an f-string"
        if isinstance(arg, ast.BinOp):
            if isinstance(arg.op, ast.Mod) and self._stringish(arg.left):
                return "%-formatting"
            if isinstance(arg.op, ast.Add) and (
                self._stringish(arg.left) or self._stringish(arg.right)
            ):
                return "+ concatenation"
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr == "format"
            and self._stringish(arg.func.value)
        ):
            return ".format()"
        return None

    def _stringish(self, node: ast.expr) -> bool:
        """Whether ``node`` is (or concatenates) string text."""
        if isinstance(node, ast.Constant):
            return isinstance(node.value, str)
        if isinstance(node, ast.JoinedStr):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return self._stringish(node.left) or self._stringish(node.right)
        return False
