"""Smoke entry point: quick test run + incremental-maintenance check.

Registered as the ``hippo-smoke`` console script in ``pyproject.toml``
(and runnable as ``python -m repro.smoke``).  It runs the unit test
suite quietly, then a self-contained miniature of
``benchmarks/bench_incremental_updates.py``: a generated key-conflict
table takes a handful of single-statement updates, timing incremental
hypergraph maintenance against full re-detection and asserting they
agree -- a fast end-to-end health check for CI.
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path
from typing import Optional


def _bench_smoke(n_tuples: int = 4000, updates: int = 5) -> int:
    """Single-statement updates: incremental vs. full, with equivalence."""
    from repro.conflicts import detect_conflicts
    from repro.core.hippo import HippoEngine
    from repro.engine.database import Database
    from repro.workloads import generate_key_conflict_table

    db = Database()
    table = generate_key_conflict_table(db, "r", n_tuples, 0.05, seed=23)
    engine = HippoEngine(db, [table.fd])
    engine.refresh(full=True)  # warm (also builds the matcher indexes)

    incremental = full = 0.0
    next_key = 10 * n_tuples + 1  # outside the generator's key domain
    for step in range(updates):
        db.insert_rows("r", [(next_key + step, step)])
        started = time.perf_counter()
        engine.refresh()
        incremental += time.perf_counter() - started
        assert engine.detection.mode == "incremental", engine.detection.mode

        started = time.perf_counter()
        report = detect_conflicts(db, [table.fd])
        full += time.perf_counter() - started
        if engine.hypergraph.as_dict() != report.hypergraph.as_dict():
            print("smoke: FAIL (incremental != full re-detection)")
            return 1

    speedup = full / incremental if incremental else float("inf")
    print(
        f"smoke: {updates} single-statement updates over {n_tuples} tuples:"
        f" incremental {incremental * 1e3:.1f} ms,"
        f" full {full * 1e3:.1f} ms ({speedup:.0f}x)"
    )
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    """Run ``pytest -q`` (when a tests/ directory is around) + the bench."""
    arguments = list(argv if argv is not None else sys.argv[1:])
    skip_tests = "--no-tests" in arguments
    if not skip_tests:
        tests = Path.cwd() / "tests"
        if tests.is_dir():
            status = subprocess.call(
                [sys.executable, "-m", "pytest", "-q", str(tests)]
            )
            if status != 0:
                return status
        else:
            print("smoke: no tests/ directory here, skipping pytest")
    return _bench_smoke()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
