"""repro: a reproduction of Hippo (Chomicki, Marcinkowski & Staworko, EDBT 2004).

Hippo computes *consistent query answers* -- answers true in every repair
of an inconsistent database -- for SJUD SQL queries under denial
constraints, using a main-memory conflict hypergraph instead of
materializing the (possibly exponentially many) repairs.

Public API highlights
---------------------

* :class:`repro.engine.Database` -- the in-memory RDBMS substrate.
* :class:`repro.core.HippoEngine` -- the full pipeline of the paper's
  Figure 1 (conflict detection -> enveloping -> evaluation -> prover).
* :mod:`repro.constraints` -- denial constraints, functional dependencies
  and exclusion constraints.
* :mod:`repro.rewriting` -- the PODS'99 query-rewriting baseline.
* :mod:`repro.repairs` -- exhaustive repair enumeration (ground truth).
* :mod:`repro.workloads` -- synthetic inconsistent-database generators.

Quickstart
----------

>>> from repro import Database, HippoEngine
>>> from repro.constraints import FunctionalDependency
>>> db = Database()
>>> _ = db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
>>> _ = db.execute("INSERT INTO emp VALUES ('ann', 10), ('ann', 20), ('bob', 30)")
>>> hippo = HippoEngine(db, [FunctionalDependency("emp", ["name"], ["salary"])])
>>> sorted(hippo.consistent_answers("SELECT * FROM emp").rows)
[('bob', 30)]
"""

from repro.engine import Database, Result
from repro.version import __version__

__all__ = ["Database", "Result", "HippoEngine", "__version__"]


def __getattr__(name: str) -> object:
    # HippoEngine is re-exported lazily to keep `import repro` cheap and to
    # avoid an import cycle while the package initializes.
    if name == "HippoEngine":
        from repro.core import HippoEngine

        return HippoEngine
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
