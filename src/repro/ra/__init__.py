"""Relational algebra: the SJUD query class and the classical algebra.

* :mod:`repro.ra.sjud` -- Hippo's supported query class (normalized form,
  SQL conversion, the projection restriction).
* :mod:`repro.ra.compile` -- compilation of SJUD trees to engine plans
  with tid provenance and per-relation restrictions.
* :mod:`repro.ra.to_sql` -- rendering SJUD trees back to SQL.
* :mod:`repro.ra.algebra` -- textbook named-attribute algebra with a naive
  evaluator (test oracle / programmatic API).
"""

from repro.ra.compile import evaluate_core, evaluate_tree, compile_core, unrestricted
from repro.ra.sjud import (
    Atom,
    CatalogSchemaProvider,
    Difference,
    OutputColumn,
    SJUDCore,
    SJUDTree,
    Union_,
    cores_of,
    from_sql_body,
    from_sql_query,
    output_arity_of,
    output_names_of,
    reconstruction_map,
    validate_tree,
)
from repro.ra.to_sql import (
    PARAM_STYLES,
    ParameterizedSQL,
    render_core_tids,
    render_query,
    render_tree,
    tree_to_query,
    tree_to_sql,
)

__all__ = [
    "Atom",
    "CatalogSchemaProvider",
    "Difference",
    "OutputColumn",
    "SJUDCore",
    "SJUDTree",
    "Union_",
    "cores_of",
    "from_sql_body",
    "from_sql_query",
    "output_arity_of",
    "output_names_of",
    "reconstruction_map",
    "validate_tree",
    "compile_core",
    "evaluate_core",
    "evaluate_tree",
    "unrestricted",
    "PARAM_STYLES",
    "ParameterizedSQL",
    "render_core_tids",
    "render_query",
    "render_tree",
    "tree_to_query",
    "tree_to_sql",
]
