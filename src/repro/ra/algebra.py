"""Classical relational algebra with named attributes.

This module is deliberately independent of the SJUD machinery: it is the
textbook algebra (relation, selection, projection, product, union,
difference, rename) with set semantics and a direct, naive evaluator.  It
serves two purposes:

* a second, independently-written oracle for the property-based tests
  (the SJUD compiler and this evaluator must agree), and
* a plain API for users who want to build queries programmatically rather
  than through SQL.

Attributes are plain strings; :class:`Product` requires its inputs to have
disjoint attribute names (use :class:`Rename` to disambiguate, as the
textbook does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union as TypingUnion

from repro.engine.database import Database
from repro.engine.expressions import ExpressionCompiler, Scope
from repro.errors import AlgebraError
from repro.sql import ast
from repro.ra.sjud import (
    Difference as SJUDDifference,
    SJUDCore,
    SJUDTree,
    Union_ as SJUDUnion,
)


class RAExpr:
    """Marker base class for algebra nodes."""


@dataclass(frozen=True)
class Relation(RAExpr):
    """A base relation."""

    name: str


@dataclass(frozen=True)
class Selection(RAExpr):
    """``sigma_condition(child)``; the condition references attributes by
    name via ``ColumnRef(None, attr)`` nodes."""

    child: RAExpr
    condition: ast.Expression


@dataclass(frozen=True)
class Projection(RAExpr):
    """``pi(child)``: output columns are attribute names or constants.

    ``columns`` is a tuple of ``(output_name, source)`` where source is an
    attribute name (str) or an :class:`~repro.sql.ast.Literal`.
    """

    child: RAExpr
    columns: tuple[tuple[str, TypingUnion[str, ast.Literal]], ...]


@dataclass(frozen=True)
class Product(RAExpr):
    """Cartesian product; attribute sets must be disjoint."""

    left: RAExpr
    right: RAExpr


@dataclass(frozen=True)
class Union(RAExpr):
    """Set union of two union-compatible expressions."""

    left: RAExpr
    right: RAExpr


@dataclass(frozen=True)
class Difference(RAExpr):
    """Set difference of two union-compatible expressions."""

    left: RAExpr
    right: RAExpr


@dataclass(frozen=True)
class Rename(RAExpr):
    """Renames attributes via an old-name -> new-name mapping."""

    child: RAExpr
    mapping: tuple[tuple[str, str], ...]

    @staticmethod
    def prefix(child: RAExpr, prefix: str, attributes: tuple[str, ...]) -> "Rename":
        """Rename every attribute to ``prefix.attribute``."""
        return Rename(
            child, tuple((attr, f"{prefix}.{attr}") for attr in attributes)
        )


def schema_of(expr: RAExpr, db: Database) -> tuple[str, ...]:
    """Attribute names of an algebra expression.

    Raises:
        AlgebraError: for malformed expressions (duplicate attributes in a
            product, arity mismatches, unknown renames, ...).
    """
    if isinstance(expr, Relation):
        return tuple(
            c.lower() for c in db.catalog.table(expr.name).schema.column_names
        )
    if isinstance(expr, Selection):
        return schema_of(expr.child, db)
    if isinstance(expr, Projection):
        child = schema_of(expr.child, db)
        for _name, source in expr.columns:
            if isinstance(source, str) and source.lower() not in child:
                raise AlgebraError(f"projection of unknown attribute {source!r}")
        return tuple(name.lower() for name, _source in expr.columns)
    if isinstance(expr, Product):
        left = schema_of(expr.left, db)
        right = schema_of(expr.right, db)
        overlap = set(left) & set(right)
        if overlap:
            raise AlgebraError(
                f"product inputs share attributes {sorted(overlap)}; use Rename"
            )
        return left + right
    if isinstance(expr, (Union, Difference)):
        left = schema_of(expr.left, db)
        right = schema_of(expr.right, db)
        if len(left) != len(right):
            raise AlgebraError(
                f"union/difference inputs have arities {len(left)} and {len(right)}"
            )
        return left
    if isinstance(expr, Rename):
        child = list(schema_of(expr.child, db))
        mapping = {old.lower(): new.lower() for old, new in expr.mapping}
        unknown = set(mapping) - set(child)
        if unknown:
            raise AlgebraError(f"rename of unknown attributes {sorted(unknown)}")
        renamed = tuple(mapping.get(attr, attr) for attr in child)
        if len(set(renamed)) != len(renamed):
            raise AlgebraError("rename produces duplicate attribute names")
        return renamed
    raise AlgebraError(f"unknown algebra node {type(expr).__name__}")


def evaluate(expr: RAExpr, db: Database) -> frozenset[tuple]:
    """Naive set-semantics evaluation (the reference oracle)."""
    if isinstance(expr, Relation):
        return frozenset(db.catalog.table(expr.name).rows())
    if isinstance(expr, Selection):
        attributes = schema_of(expr.child, db)
        scope = Scope([(None, attr) for attr in attributes])
        predicate = ExpressionCompiler(scope).compile_predicate(expr.condition)
        return frozenset(
            row for row in evaluate(expr.child, db) if predicate((row,))
        )
    if isinstance(expr, Projection):
        attributes = schema_of(expr.child, db)
        indexes: list[TypingUnion[int, ast.Literal]] = []
        for _name, source in expr.columns:
            if isinstance(source, str):
                indexes.append(attributes.index(source.lower()))
            else:
                indexes.append(source)
        return frozenset(
            tuple(
                row[source] if isinstance(source, int) else source.value
                for source in indexes
            )
            for row in evaluate(expr.child, db)
        )
    if isinstance(expr, Product):
        schema_of(expr, db)  # validates disjointness
        left = evaluate(expr.left, db)
        right = evaluate(expr.right, db)
        return frozenset(l + r for l in left for r in right)
    if isinstance(expr, Union):
        schema_of(expr, db)
        return evaluate(expr.left, db) | evaluate(expr.right, db)
    if isinstance(expr, Difference):
        schema_of(expr, db)
        return evaluate(expr.left, db) - evaluate(expr.right, db)
    if isinstance(expr, Rename):
        schema_of(expr, db)
        return evaluate(expr.child, db)
    raise AlgebraError(f"unknown algebra node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# SJUD -> algebra (used by tests as a cross-check)
# ---------------------------------------------------------------------------


def _qualify_condition(condition: ast.Expression) -> ast.Expression:
    """Fold ``alias.col`` references into flat ``alias.col`` attribute names."""
    from dataclasses import fields, replace

    if isinstance(condition, ast.ColumnRef):
        if condition.table is None:
            return condition
        return ast.ColumnRef(
            None, f"{condition.table.lower()}.{condition.name.lower()}"
        )
    updates = {}
    for field_info in fields(condition):  # type: ignore[arg-type]
        value = getattr(condition, field_info.name)
        if isinstance(value, ast.Expression):
            updates[field_info.name] = _qualify_condition(value)
        elif (
            isinstance(value, tuple)
            and value
            and isinstance(value[0], ast.Expression)
        ):
            updates[field_info.name] = tuple(_qualify_condition(v) for v in value)
        elif isinstance(value, tuple) and value and isinstance(value[0], tuple):
            updates[field_info.name] = tuple(
                tuple(_qualify_condition(sub) for sub in item) for item in value
            )
    return replace(condition, **updates) if updates else condition


def sjud_to_algebra(tree: SJUDTree, db: Database) -> RAExpr:
    """Translate a normalized SJUD tree into classical algebra nodes."""
    if isinstance(tree, SJUDUnion):
        return Union(sjud_to_algebra(tree.left, db), sjud_to_algebra(tree.right, db))
    if isinstance(tree, SJUDDifference):
        return Difference(
            sjud_to_algebra(tree.left, db), sjud_to_algebra(tree.right, db)
        )
    core: SJUDCore = tree
    expr: Optional[RAExpr] = None
    for atom in core.atoms:
        attributes = tuple(
            c.lower() for c in db.catalog.table(atom.relation).schema.column_names
        )
        renamed: RAExpr = Rename.prefix(
            Relation(atom.relation), atom.alias.lower(), attributes
        )
        expr = renamed if expr is None else Product(expr, renamed)
    assert expr is not None
    if core.condition is not None:
        expr = Selection(expr, _qualify_condition(core.condition))
    columns = []
    for column in core.outputs:
        if isinstance(column.source, ast.ColumnRef):
            source: TypingUnion[str, ast.Literal] = (
                f"{column.source.table.lower()}.{column.source.name.lower()}"
            )
        else:
            source = column.source
        columns.append((column.name, source))
    return Projection(expr, tuple(columns))
