"""Conversion of SJUD trees back to SQL ASTs / text.

Hippo's Enveloping step produces *"a query defining Candidates"* which is
then evaluated by the RDBMS; these helpers render such queries so examples
and logs can show exactly what is handed to the engine, and so the
rewriting baseline can splice residues into real SQL.
"""

from __future__ import annotations

from typing import Union

from repro.sql import ast
from repro.sql.formatter import format_query
from repro.ra.sjud import Difference, SJUDCore, SJUDTree, Union_


def core_to_select(core: SJUDCore, distinct: bool = True) -> ast.SelectCore:
    """Render one core as a SELECT block."""
    items = tuple(
        ast.SelectItem(column.source, column.name) for column in core.outputs
    )
    from_items = tuple(
        ast.TableRef(atom.relation, atom.alias if atom.alias != atom.relation else None)
        for atom in core.atoms
    )
    return ast.SelectCore(items, from_items, core.condition, (), None, distinct)


def tree_to_body(tree: SJUDTree) -> Union[ast.SelectCore, ast.SetOperation]:
    """Render a tree as a SELECT body (set operations preserved)."""
    if isinstance(tree, SJUDCore):
        return core_to_select(tree)
    if isinstance(tree, Union_):
        return ast.SetOperation(
            "union", tree_to_body(tree.left), tree_to_body(tree.right)
        )
    if isinstance(tree, Difference):
        return ast.SetOperation(
            "except", tree_to_body(tree.left), tree_to_body(tree.right)
        )
    raise TypeError(f"cannot render {type(tree).__name__}")


def tree_to_query(tree: SJUDTree) -> ast.Query:
    """Render a tree as a full query AST."""
    return ast.Query(tree_to_body(tree))


def tree_to_sql(tree: SJUDTree) -> str:
    """Render a tree as SQL text."""
    return format_query(tree_to_query(tree))
