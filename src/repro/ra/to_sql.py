"""Conversion of SJUD trees back to SQL -- literal or parameterized.

Hippo's Enveloping step produces *"a query defining Candidates"* which is
then evaluated by the RDBMS; these helpers render such queries so examples
and logs can show exactly what is handed to the engine, so the rewriting
baseline can splice residues into real SQL, and -- since the backend
layer exists -- so pushdown backends (:mod:`repro.backends`) can hand the
rendered SQL to a real driver.

**The lowering contract.**  Pushdown rendering never inlines a literal:
every :class:`~repro.sql.ast.Literal` becomes a placeholder in the
backend's parameter style and its value is appended to an ordered
argument list (:class:`ParameterizedSQL`).  Identifiers go through
:func:`~repro.sql.formatter.format_identifier` (this module's quoting
helpers are the only place SQL text may be assembled from strings --
hippolint rule ``HL012`` enforces that at execute call sites).  All SJUD
node shapes render: cores (selection, join, restricted projection,
constant outputs), unions and differences, plus the full condition
grammar (comparisons, ``AND``/``OR``/``NOT``, ``IS NULL``, ``IN``,
``BETWEEN``, ``LIKE``) and the rewriting baseline's ``NOT EXISTS``
residues.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.engine.types import SQLValue, literal_sql
from repro.errors import AlgebraError
from repro.sql import ast
from repro.sql.formatter import format_identifier, format_query
from repro.ra.sjud import Difference, SJUDCore, SJUDTree, Union_

#: Supported parameter styles: placeholder text per 0-based index.
PARAM_STYLES: dict[str, Callable[[int], str]] = {
    "qmark": lambda index: "?",
    "numeric": lambda index: f":{index + 1}",
    "named": lambda index: f":p{index}",
}


@dataclass(frozen=True)
class ParameterizedSQL:
    """Rendered SQL text plus its ordered bound arguments.

    Attributes:
        text: the SQL with placeholders in ``style``.
        params: the literal values, in placeholder order.
        style: one of :data:`PARAM_STYLES` (``"qmark"`` default).
    """

    text: str
    params: tuple[SQLValue, ...]
    style: str = "qmark"

    @property
    def named_params(self) -> dict[str, SQLValue]:
        """The arguments as a mapping (for the ``"named"`` style)."""
        return {f"p{index}": value for index, value in enumerate(self.params)}

    def inline(self) -> str:
        """The SQL with literals substituted back -- display/logging only.

        Never execute the returned text; it exists so humans can read one
        self-contained statement.  Placeholder-looking text inside quoted
        identifiers is not protected (no such identifiers are produced by
        the renderer itself).
        """
        values = iter(self.params)
        if self.style == "qmark":
            parts = self.text.split("?")
            out = [parts[0]]
            for part in parts[1:]:
                out.append(literal_sql(next(values)))
                out.append(part)
            return "".join(out)
        pattern = r":p(\d+)" if self.style == "named" else r":(\d+)"
        offset = 0 if self.style == "named" else 1

        def substitute(match: "re.Match[str]") -> str:
            return literal_sql(self.params[int(match.group(1)) - offset])

        return re.sub(pattern, substitute, self.text)


@dataclass
class _ParamCollector:
    """The ``literals`` hook that parameterizes instead of inlining."""

    style: str
    params: list[SQLValue] = field(default_factory=list)

    def __call__(self, value: SQLValue) -> str:
        placeholder = PARAM_STYLES[self.style](len(self.params))
        self.params.append(value)
        return placeholder


# ---------------------------------------------------------------------------
# SJUD tree -> SQL AST
# ---------------------------------------------------------------------------


def core_to_select(
    core: SJUDCore,
    distinct: bool = True,
    tid_column: Optional[str] = None,
) -> ast.SelectCore:
    """Render one core as a SELECT block.

    With ``tid_column``, one ``alias.tid_column`` select item is appended
    per atom (in atom order) -- the *residual-join* form conflict
    detection pushes to SQL backends that mirror the engine's tuple ids
    under that column name.
    """
    items = tuple(
        ast.SelectItem(column.source, column.name) for column in core.outputs
    )
    if tid_column is not None:
        items += tuple(
            ast.SelectItem(
                ast.ColumnRef(atom.alias, tid_column), f"tid_{index}"
            )
            for index, atom in enumerate(core.atoms)
        )
    from_items = tuple(
        ast.TableRef(atom.relation, atom.alias if atom.alias != atom.relation else None)
        for atom in core.atoms
    )
    return ast.SelectCore(items, from_items, core.condition, (), None, distinct)


def tree_to_body(tree: SJUDTree) -> Union[ast.SelectCore, ast.SetOperation]:
    """Render a tree as a SELECT body (set operations preserved)."""
    if isinstance(tree, SJUDCore):
        return core_to_select(tree)
    if isinstance(tree, Union_):
        return ast.SetOperation(
            "union", tree_to_body(tree.left), tree_to_body(tree.right)
        )
    if isinstance(tree, Difference):
        return ast.SetOperation(
            "except", tree_to_body(tree.left), tree_to_body(tree.right)
        )
    raise TypeError(f"cannot render {type(tree).__name__}")


def tree_to_query(tree: SJUDTree) -> ast.Query:
    """Render a tree as a full query AST."""
    return ast.Query(tree_to_body(tree))


def tree_to_sql(tree: SJUDTree) -> str:
    """Render a tree as SQL text with inlined literals (display form)."""
    return format_query(tree_to_query(tree))


# ---------------------------------------------------------------------------
# Parameterized rendering (the pushdown form)
# ---------------------------------------------------------------------------


def render_query(query: ast.Query, style: str = "qmark") -> ParameterizedSQL:
    """Render any query AST with parameterized literals.

    Raises:
        AlgebraError: on an unknown parameter style or an AST node the
            formatter cannot lower.
    """
    if style not in PARAM_STYLES:
        raise AlgebraError(
            f"unknown parameter style {style!r};"
            f" expected one of {sorted(PARAM_STYLES)}"
        )
    collector = _ParamCollector(style)
    try:
        text = format_query(query, collector)
    except TypeError as exc:
        raise AlgebraError(f"cannot lower query to SQL: {exc}") from exc
    return ParameterizedSQL(text, tuple(collector.params), style)


def render_tree(tree: SJUDTree, style: str = "qmark") -> ParameterizedSQL:
    """Render an SJUD tree with parameterized literals."""
    return render_query(tree_to_query(tree), style)


def render_core_tids(
    core: SJUDCore, tid_column: str, style: str = "qmark"
) -> ParameterizedSQL:
    """Render a core's residual join: outputs plus one tid per atom.

    This is the detection-pushdown form: a denial constraint's body
    (atoms + condition, no outputs) renders to
    ``SELECT DISTINCT a0.<tid>, a1.<tid> FROM ... WHERE ...`` whose rows
    are exactly the hyperedges of the conflict hypergraph.
    """
    query = ast.Query(core_to_select(core, tid_column=tid_column))
    return render_query(query, style)


# ---------------------------------------------------------------------------
# Quoting helpers (the only sanctioned SQL-from-strings assembly)
# ---------------------------------------------------------------------------


def quote_identifier(name: str) -> str:
    """Quote an identifier for SQL text (re-export for backends)."""
    return format_identifier(name)


def create_table_sql(table: str, columns: Sequence[tuple[str, str]]) -> str:
    """``CREATE TABLE`` text for a backend mirror, identifiers quoted.

    ``columns`` pairs a column name with the backend's type name; type
    names are emitted verbatim (they come from the backend's own type
    map, never from user input).
    """
    body = ", ".join(
        f"{format_identifier(name)} {type_name}" for name, type_name in columns
    )
    return f"CREATE TABLE {format_identifier(table)} ({body})"


def drop_table_sql(table: str) -> str:
    """``DROP TABLE IF EXISTS`` text for a backend mirror."""
    return f"DROP TABLE IF EXISTS {format_identifier(table)}"


def create_index_sql(
    index: str, table: str, columns: Sequence[str]
) -> str:
    """``CREATE INDEX`` text for a backend mirror."""
    cols = ", ".join(format_identifier(column) for column in columns)
    return (
        f"CREATE INDEX {format_identifier(index)}"
        f" ON {format_identifier(table)} ({cols})"
    )


def insert_sql(
    table: str,
    arity: int,
    style: str = "qmark",
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Parameterized ``INSERT`` text for a backend mirror (one row).

    With ``columns``, the insert names its target columns explicitly
    (how the SQLite backend addresses ``rowid`` to pin native tids).

    Raises:
        AlgebraError: on an unknown parameter style or a column list
            whose length disagrees with ``arity``.
    """
    if style not in PARAM_STYLES:
        raise AlgebraError(
            f"unknown parameter style {style!r};"
            f" expected one of {sorted(PARAM_STYLES)}"
        )
    if columns is not None and len(columns) != arity:
        raise AlgebraError(
            f"insert into {table!r}: {len(columns)} columns named"
            f" but arity is {arity}"
        )
    placeholders = ", ".join(
        PARAM_STYLES[style](index) for index in range(arity)
    )
    named = ""
    if columns is not None:
        named = (
            " (" + ", ".join(format_identifier(c) for c in columns) + ")"
        )
    return (
        f"INSERT INTO {format_identifier(table)}{named}"
        f" VALUES ({placeholders})"
    )
