"""Compilation of SJUD trees into engine plans, with tid provenance.

Hippo hands the envelope query to the RDBMS for evaluation; here the
equivalent is compiling a core into a physical plan over the engine.  Each
compiled core's rows carry one trailing *tid column per atom*, which is the
provenance the extended-envelope optimization uses to answer membership
checks without further queries.

Every scan can also be *restricted* to a tid set: evaluating a query over
a repair, over the conflict-free core of the database (``Q-down``), or over
the full instance (``Q-up``) all go through the same code path.

Unrestricted scans (``restrict`` returning None, the ``Q-up`` /
envelope-evaluation case) execute over the table's cached column-major
batch (:meth:`repro.engine.storage.Table.columnar`), including the
trailing tid column: repeated envelope evaluations over an unchanged
table reuse the materialized ``row + (tid,)`` batch instead of
re-walking the row dict, and the per-row ``rows_scanned`` bump collapses
into one per batch.  Restricted scans keep the row-at-a-time path.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.engine import plan as physical
from repro.engine.database import Database
from repro.engine.expressions import ExpressionCompiler, Scope
from repro.errors import AlgebraError
from repro.sql import ast
from repro.ra.sjud import Difference, SJUDCore, SJUDTree, Union_

#: Maps a relation name to the tids allowed in a scan (None = all rows).
Restriction = Callable[[str], Optional[frozenset[int]]]

#: The visible columns of a (partial) plan: ``(alias, column)`` pairs.
Entries = Sequence[tuple[Optional[str], str]]


def unrestricted(_relation: str) -> Optional[frozenset[int]]:
    """The identity restriction: scan everything."""
    return None


def compile_core(
    core: SJUDCore,
    db: Database,
    restrict: Restriction = unrestricted,
) -> physical.PlanNode:
    """Compile one core into a plan.

    Output rows are ``output values + one tid per atom`` (atom order).
    Equality conjuncts between two atoms become hash joins; everything
    else is evaluated as a filter at the earliest possible position.
    """
    sources: list[tuple[physical.PlanNode, list[tuple[Optional[str], str]]]] = []
    for atom in core.atoms:
        table = db.catalog.table(atom.relation)
        entries = [
            (atom.alias.lower(), column.lower())
            for column in table.schema.column_names
        ]
        entries.append((atom.alias.lower(), "#tid"))
        scan = physical.Scan(
            table, db.stats, include_tid=True, keep_tids=restrict(atom.relation)
        )
        sources.append((scan, entries))

    conjuncts = ast.split_conjuncts(core.condition)
    used: set[int] = set()

    def resolvable(expr: ast.Expression, entries: Entries) -> bool:
        probe = Scope(list(entries))
        from repro.engine.planner import column_refs
        from repro.errors import PlanError

        for ref in column_refs(expr):
            try:
                probe.resolve(ref.table, ref.name)
            except PlanError:
                return False
        return True

    def apply_local(node: physical.PlanNode, entries: Entries) -> physical.PlanNode:
        local = [
            index
            for index, conjunct in enumerate(conjuncts)
            if index not in used and resolvable(conjunct, entries)
        ]
        if not local:
            return node
        used.update(local)
        scope = Scope(list(entries))
        predicate = ExpressionCompiler(scope).compile_predicate(
            ast.conjunction([conjuncts[i] for i in local])  # type: ignore[arg-type]
        )
        return physical.Filter(node, predicate)

    node, entries = sources[0]
    node = apply_local(node, entries)
    for next_node, next_entries in sources[1:]:
        next_node = apply_local(next_node, next_entries)
        combined_entries = entries + next_entries
        equi: list[tuple[ast.ColumnRef, ast.ColumnRef]] = []
        residual: list[ast.Expression] = []
        for index, conjunct in enumerate(conjuncts):
            if index in used or not resolvable(conjunct, combined_entries):
                continue
            pair = _equi_pair(conjunct, entries, next_entries)
            used.add(index)
            if pair is not None:
                equi.append(pair)
            else:
                residual.append(conjunct)
        residual_predicate = None
        if residual:
            scope = Scope(list(combined_entries))
            residual_predicate = ExpressionCompiler(scope).compile_predicate(
                ast.conjunction(residual)  # type: ignore[arg-type]
            )
        if equi:
            left_scope = Scope(list(entries))
            right_scope = Scope(list(next_entries))
            node = physical.HashJoin(
                node,
                next_node,
                [ExpressionCompiler(left_scope).compile(l) for l, _r in equi],
                [ExpressionCompiler(right_scope).compile(r) for _l, r in equi],
                residual_predicate,
            )
        else:
            kind = "inner" if residual_predicate else "cross"
            node = physical.NestedLoopJoin(node, next_node, residual_predicate, kind)
        entries = combined_entries
        node = apply_local(node, entries)

    unused = [conjuncts[i] for i in range(len(conjuncts)) if i not in used]
    if unused:
        raise AlgebraError(
            f"condition references unknown columns: {unused[0]!r}"
        )

    scope = Scope(list(entries))
    compiler = ExpressionCompiler(scope)
    evaluators = [compiler.compile(column.source) for column in core.outputs]
    for atom in core.atoms:
        evaluators.append(compiler.compile(ast.ColumnRef(atom.alias, "#tid")))
    return physical.Project(node, evaluators)


def _equi_pair(
    conjunct: ast.Expression,
    left_entries: Entries,
    right_entries: Entries,
) -> Optional[tuple[ast.ColumnRef, ast.ColumnRef]]:
    """Detect an equality conjunct linking the two entry sets."""
    if not (
        isinstance(conjunct, ast.BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ast.ColumnRef)
        and isinstance(conjunct.right, ast.ColumnRef)
    ):
        return None

    def side_of(ref: ast.ColumnRef) -> Optional[str]:
        key = (ref.table.lower() if ref.table else None, ref.name.lower())
        in_left = key in left_entries
        in_right = key in right_entries
        if in_left and not in_right:
            return "left"
        if in_right and not in_left:
            return "right"
        return None

    left_side = side_of(conjunct.left)
    right_side = side_of(conjunct.right)
    if left_side == "left" and right_side == "right":
        return (conjunct.left, conjunct.right)
    if left_side == "right" and right_side == "left":
        return (conjunct.right, conjunct.left)
    return None


def evaluate_core(
    core: SJUDCore,
    db: Database,
    restrict: Restriction = unrestricted,
) -> dict[tuple, tuple[tuple[str, int], ...]]:
    """Evaluate a core, returning ``answer -> witness provenance``.

    Provenance is a tuple of ``(relation, tid)`` pairs, one per atom, of
    the *first* witness found for that answer value (set semantics keeps
    one witness; the Prover only needs facts known to be in the database).
    """
    node = compile_core(core, db, restrict)
    arity = len(core.outputs)
    results: dict[tuple, tuple[tuple[str, int], ...]] = {}
    relations = [atom.relation.lower() for atom in core.atoms]
    for row in node.rows(()):
        value = row[:arity]
        if value not in results:
            tids = row[arity:]
            results[value] = tuple(zip(relations, tids))
    return results


def evaluate_tree(
    tree: SJUDTree,
    db: Database,
    restrict: Restriction = unrestricted,
) -> frozenset[tuple]:
    """Evaluate a full SJUD tree to a set of rows (set semantics)."""
    if isinstance(tree, SJUDCore):
        return frozenset(evaluate_core(tree, db, restrict).keys())
    if isinstance(tree, Union_):
        return evaluate_tree(tree.left, db, restrict) | evaluate_tree(
            tree.right, db, restrict
        )
    if isinstance(tree, Difference):
        return evaluate_tree(tree.left, db, restrict) - evaluate_tree(
            tree.right, db, restrict
        )
    raise AlgebraError(f"cannot evaluate {type(tree).__name__}")
