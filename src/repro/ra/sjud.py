"""The SJUD query class: Hippo's supported relational-algebra fragment.

Hippo (EDBT 2004) computes consistent answers to queries built from
**S**\\ election, cartesian product / **J**\\ oin, **U**\\ nion and
**D**\\ ifference, plus the projections that *"don't introduce existential
quantifiers in the corresponding relational calculus query"* (footnote 4 of
the paper).  This module defines the normalized representation of that
class and the conversion from SQL:

* an :class:`SJUDCore` is a conjunctive block ``π(σ(R1 × ... × Rk))``:
  a list of relation *atoms*, one conjunctive/boolean *condition*, and a
  list of *output columns* (attribute references or constants);
* an :class:`SJUDTree` combines cores with union and difference.

The projection restriction is enforced by :func:`reconstruction_map`: a
core is admissible iff the value of **every attribute of every atom** is
determined by the output tuple -- either because the attribute is itself
an output column, or because the condition's top-level equality conjuncts
equate it to an output column or to a constant.  When that map exists, a
candidate answer determines a *unique* witness tuple per atom, which is
exactly what the Prover's grounding step needs; when it does not, the
query is existential and consistent answering is co-NP-hard, so we refuse
it with an explanation (as Hippo does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol, Sequence, Union

if TYPE_CHECKING:
    from repro.engine.catalog import Catalog

from repro.errors import AlgebraError, UnsupportedQueryError
from repro.sql import ast


class SchemaProvider(Protocol):
    """Anything that can report the column names of a relation."""

    def relation_columns(self, name: str) -> tuple[str, ...]:
        """Column names of relation ``name`` (raises on unknown names)."""


class CatalogSchemaProvider:
    """Adapter from an engine :class:`~repro.engine.catalog.Catalog`."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    def relation_columns(self, name: str) -> tuple[str, ...]:
        return self._catalog.table(name).schema.column_names


@dataclass(frozen=True)
class Atom:
    """One relation occurrence in a core (a tuple variable).

    Attributes:
        alias: the tuple-variable name, unique within the core.
        relation: the base-relation name.
    """

    alias: str
    relation: str


@dataclass(frozen=True)
class OutputColumn:
    """One output column: a name plus its source (attribute or constant)."""

    name: str
    source: Union[ast.ColumnRef, ast.Literal]


@dataclass(frozen=True)
class SJUDCore:
    """A conjunctive SJ block with restricted projection."""

    atoms: tuple[Atom, ...]
    condition: Optional[ast.Expression]
    outputs: tuple[OutputColumn, ...]

    @property
    def output_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.outputs)

    def alias_of(self, name: str) -> Atom:
        """The atom bound under ``name``.

        Raises:
            AlgebraError: when no atom has that alias.
        """
        lowered = name.lower()
        for atom in self.atoms:
            if atom.alias.lower() == lowered:
                return atom
        raise AlgebraError(f"no atom with alias {name!r}")


@dataclass(frozen=True)
class Union_:
    """Union of two SJUD trees (set semantics)."""

    left: "SJUDTree"
    right: "SJUDTree"


@dataclass(frozen=True)
class Difference:
    """Difference of two SJUD trees (set semantics)."""

    left: "SJUDTree"
    right: "SJUDTree"


SJUDTree = Union[SJUDCore, Union_, Difference]

#: How one attribute of an atom is reconstructed from a candidate answer:
#: either a slot of the output tuple or a constant.
Source = tuple[str, object]  # ("slot", index) | ("const", value)


def cores_of(tree: SJUDTree) -> list[SJUDCore]:
    """All cores of a tree, left-to-right."""
    if isinstance(tree, SJUDCore):
        return [tree]
    return cores_of(tree.left) + cores_of(tree.right)


def output_names_of(tree: SJUDTree) -> tuple[str, ...]:
    """Output column names (taken from the leftmost core, as SQL does)."""
    if isinstance(tree, SJUDCore):
        return tree.output_names
    return output_names_of(tree.left)


def output_arity_of(tree: SJUDTree) -> int:
    """Number of output columns."""
    return len(output_names_of(tree))


# ---------------------------------------------------------------------------
# Projection restriction: the reconstruction map
# ---------------------------------------------------------------------------


class _UnionFind:
    """Union-find over hashable items (attribute names and constants)."""

    def __init__(self) -> None:
        self._parent: dict[object, object] = {}

    def find(self, item: object) -> object:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: object, b: object) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_a] = root_b


def _qualified(ref: ast.ColumnRef) -> str:
    """Canonical lower-cased ``alias.column`` key for a resolved reference."""
    return f"{ref.table.lower()}.{ref.name.lower()}"


def reconstruction_map(
    core: SJUDCore, schema: SchemaProvider
) -> dict[str, list[Source]]:
    """Per-atom reconstruction of base tuples from a candidate answer.

    Returns a map ``alias -> [source per column]`` where each source is
    ``("slot", output_index)`` or ``("const", value)``.

    Raises:
        UnsupportedQueryError: when some attribute is not determined by
            the output -- i.e. the projection introduces an existential
            quantifier, which is outside Hippo's query class.
    """
    classes = _UnionFind()

    # Equality conjuncts of the condition merge attribute classes.
    for conjunct in ast.split_conjuncts(core.condition):
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
            left, right = conjunct.left, conjunct.right
            if isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef):
                classes.union(_qualified(left), _qualified(right))
            elif isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
                classes.union(_qualified(left), ("const", right.value))
            elif isinstance(left, ast.Literal) and isinstance(right, ast.ColumnRef):
                classes.union(_qualified(right), ("const", left.value))

    # Output columns pin their class to an output slot (first one wins);
    # constant outputs pin a constant.
    slot_of_class: dict = {}
    const_of_class: dict = {}
    for index, column in enumerate(core.outputs):
        if isinstance(column.source, ast.ColumnRef):
            root = classes.find(_qualified(column.source))
            slot_of_class.setdefault(root, index)
        else:
            # Constant outputs determine nothing about atom attributes.
            pass
    # Collect constants present in equality classes.
    for item in list(classes._parent):
        if isinstance(item, tuple) and item and item[0] == "const":
            const_of_class[classes.find(item)] = item[1]

    result: dict[str, list[Source]] = {}
    for atom in core.atoms:
        columns = schema.relation_columns(atom.relation)
        sources: list[Source] = []
        for column in columns:
            key = f"{atom.alias.lower()}.{column.lower()}"
            root = classes.find(key)
            if root in const_of_class:
                sources.append(("const", const_of_class[root]))
            elif root in slot_of_class:
                sources.append(("slot", slot_of_class[root]))
            else:
                raise UnsupportedQueryError(
                    f"projection drops attribute {atom.alias}.{column} without"
                    " determining it: the query is existential (outside the"
                    " SJUD class Hippo supports; consistent answering for such"
                    " projections is co-NP-data-complete)"
                )
        result[atom.alias.lower()] = sources
    return result


def validate_tree(tree: SJUDTree, schema: SchemaProvider) -> None:
    """Validate arities and projection restrictions across a whole tree.

    Raises:
        AlgebraError: on union-incompatible branches.
        UnsupportedQueryError: on an existential projection.
    """
    if isinstance(tree, SJUDCore):
        reconstruction_map(tree, schema)
        return
    if output_arity_of(tree.left) != output_arity_of(tree.right):
        op = "UNION" if isinstance(tree, Union_) else "EXCEPT"
        raise AlgebraError(
            f"{op} branches have different arities"
            f" ({output_arity_of(tree.left)} vs {output_arity_of(tree.right)})"
        )
    validate_tree(tree.left, schema)
    validate_tree(tree.right, schema)


# ---------------------------------------------------------------------------
# SQL -> SJUD conversion
# ---------------------------------------------------------------------------


def from_sql_query(query: ast.Query, schema: SchemaProvider) -> SJUDTree:
    """Convert a parsed SQL query into a validated SJUD tree.

    ORDER BY is ignored here (consistent answers form a set; the caller may
    re-apply ordering to the final answers).  LIMIT / OFFSET are rejected.

    Raises:
        UnsupportedQueryError: for constructs outside Hippo's class.
    """
    if query.limit is not None or query.offset is not None:
        raise UnsupportedQueryError(
            "LIMIT/OFFSET are not meaningful for consistent query answers"
        )
    tree = from_sql_body(query.body, schema)
    validate_tree(tree, schema)
    return tree


def from_sql_body(
    body: Union[ast.SelectCore, ast.SetOperation], schema: SchemaProvider
) -> SJUDTree:
    """Convert a SELECT body (without final validation)."""
    if isinstance(body, ast.SetOperation):
        left = from_sql_body(body.left, schema)
        right = from_sql_body(body.right, schema)
        if body.op == "union":
            return Union_(left, right)
        if body.op == "except":
            if body.all:
                raise UnsupportedQueryError(
                    "EXCEPT ALL has bag semantics; consistent answers are sets"
                )
            return Difference(left, right)
        if body.op == "intersect":
            # A INTERSECT B  ==  A - (A - B) in set semantics.
            if body.all:
                raise UnsupportedQueryError(
                    "INTERSECT ALL has bag semantics; consistent answers are sets"
                )
            return Difference(left, Difference(left, right))
        raise UnsupportedQueryError(f"unsupported set operation {body.op!r}")
    return _core_from_select(body, schema)


def _core_from_select(core: ast.SelectCore, schema: SchemaProvider) -> SJUDCore:
    if core.group_by or core.having:
        raise UnsupportedQueryError(
            "GROUP BY / HAVING (aggregation) is outside Hippo's SJUD class;"
            " see repro.aggregates for range-consistent aggregate answers"
        )
    if not core.from_items:
        raise UnsupportedQueryError("queries must read from at least one relation")

    atoms: list[Atom] = []
    join_conjuncts: list[ast.Expression] = []

    def add_from_item(item: ast.FromItem) -> None:
        if isinstance(item, ast.TableRef):
            schema.relation_columns(item.name)  # existence check
            binding = item.binding
            if any(atom.alias.lower() == binding.lower() for atom in atoms):
                raise AlgebraError(f"duplicate table alias {binding!r}")
            atoms.append(Atom(binding, item.name))
            return
        if isinstance(item, ast.Join):
            if item.kind == "left":
                raise UnsupportedQueryError(
                    "LEFT OUTER JOIN is outside Hippo's SJUD class"
                )
            add_from_item(item.left)
            add_from_item(item.right)
            if item.on is not None:
                join_conjuncts.extend(ast.split_conjuncts(item.on))
            return
        if isinstance(item, ast.DerivedTable):
            raise UnsupportedQueryError(
                "derived tables (subqueries in FROM) are outside Hippo's class"
            )
        raise UnsupportedQueryError(f"unsupported FROM item {type(item).__name__}")

    for item in core.from_items:
        add_from_item(item)

    condition_parts = join_conjuncts + ast.split_conjuncts(core.where)
    condition = ast.conjunction(condition_parts)
    if condition is not None:
        _check_condition(condition)
        condition = _resolve_refs(condition, atoms, schema)

    outputs: list[OutputColumn] = []
    for item in core.items:
        if isinstance(item, ast.Star):
            targets = (
                [a for a in atoms if a.alias.lower() == item.table.lower()]
                if item.table
                else list(atoms)
            )
            if not targets:
                raise AlgebraError(f"unknown alias in {item.table}.*")
            for atom in targets:
                for column in schema.relation_columns(atom.relation):
                    outputs.append(
                        OutputColumn(column, ast.ColumnRef(atom.alias, column))
                    )
            continue
        expr = item.expr
        if isinstance(expr, ast.ColumnRef):
            resolved = _resolve_one_ref(expr, atoms, schema)
            outputs.append(OutputColumn(item.alias or expr.name, resolved))
        elif isinstance(expr, ast.Literal):
            outputs.append(OutputColumn(item.alias or "const", expr))
        else:
            raise UnsupportedQueryError(
                f"select item {type(expr).__name__} is not a plain column or"
                " constant; computed columns are outside Hippo's class"
            )
    return SJUDCore(tuple(atoms), condition, tuple(outputs))


def _check_condition(condition: ast.Expression) -> None:
    """Reject condition constructs outside the quantifier-free fragment."""
    from repro.engine.planner import _walk_expressions  # shared AST walker

    for node in _walk_expressions(condition):
        if isinstance(node, (ast.Exists, ast.InSubquery)):
            raise UnsupportedQueryError(
                "subqueries in WHERE are outside Hippo's SJUD class"
            )
        if isinstance(node, ast.FunctionCall):
            raise UnsupportedQueryError(
                "function calls in WHERE are outside Hippo's class"
                " (conditions must be quantifier-free comparisons)"
            )


def _resolve_one_ref(
    ref: ast.ColumnRef, atoms: Sequence[Atom], schema: SchemaProvider
) -> ast.ColumnRef:
    """Qualify a column reference with its (unique) owning atom alias."""
    candidates = []
    for atom in atoms:
        columns = [c.lower() for c in schema.relation_columns(atom.relation)]
        if ref.name.lower() in columns:
            if ref.table is None or ref.table.lower() == atom.alias.lower():
                candidates.append(atom)
    if ref.table is not None and not candidates:
        raise AlgebraError(f"unknown column reference {ref}")
    if len(candidates) == 0:
        raise AlgebraError(f"unknown column {ref.name!r}")
    if len(candidates) > 1:
        raise AlgebraError(f"ambiguous column reference {ref}")
    return ast.ColumnRef(candidates[0].alias, ref.name)


def _resolve_refs(
    expr: ast.Expression, atoms: Sequence[Atom], schema: SchemaProvider
) -> ast.Expression:
    """Qualify every column reference in a condition."""
    from dataclasses import fields, replace

    if isinstance(expr, ast.ColumnRef):
        return _resolve_one_ref(expr, atoms, schema)
    updates = {}
    for field_info in fields(expr):  # type: ignore[arg-type]
        value = getattr(expr, field_info.name)
        if isinstance(value, ast.Expression):
            updates[field_info.name] = _resolve_refs(value, atoms, schema)
        elif (
            isinstance(value, tuple)
            and value
            and isinstance(value[0], ast.Expression)
        ):
            updates[field_info.name] = tuple(
                _resolve_refs(item, atoms, schema) for item in value
            )
        elif isinstance(value, tuple) and value and isinstance(value[0], tuple):
            updates[field_info.name] = tuple(
                tuple(_resolve_refs(sub, atoms, schema) for sub in item)
                for item in value
            )
    return replace(expr, **updates) if updates else expr
