"""The conflict hypergraph.

    "All information about integrity violations is stored in a conflict
    hypergraph.  Every hyperedge connects the tuples violating together an
    integrity constraint."  (Hippo, EDBT 2004)

Vertices are database tuples, identified as ``(relation, tid)`` pairs.
Each hyperedge is a minimal set of tuples that jointly violate one denial
constraint.  Because repairs (under denial constraints) are exactly the
maximal independent sets of this hypergraph, every question Hippo's
Prover asks reduces to independence checks and incidence lookups here --
all answered from main memory, which is the paper's central performance
claim ("we are assuming that the number of conflicts is small enough for
the hypergraph to be stored in main memory").
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple, Optional, Sequence


class Vertex(NamedTuple):
    """A database tuple: relation name (lower-cased) + tuple id."""

    relation: str
    tid: int


def vertex(relation: str, tid: int) -> Vertex:
    """Construct a normalized vertex."""
    return Vertex(relation.lower(), tid)


class ConflictHypergraph:
    """The conflict hypergraph (mutable since incremental maintenance).

    Conflict Detection builds it once; incremental maintenance then edits
    it in place through :meth:`add_edge` / :meth:`remove_edge`, which keep
    the per-vertex adjacency (``_incidence``) and ``edge_labels``
    consistent with ``edges``.

    Attributes:
        edges: the hyperedges (minimal violation sets), deduplicated.
        edge_labels: the constraint name each edge was derived from,
            positionally aligned with ``edges``.
    """

    def __init__(
        self,
        edges: Iterable[frozenset[Vertex]] = (),
        edge_labels: Optional[Sequence[str]] = None,
    ) -> None:
        self.edges: list[frozenset[Vertex]] = []
        self.edge_labels: list[str] = []
        self._position: dict[frozenset[Vertex], int] = {}
        self._incidence: dict[Vertex, list[int]] = {}
        labels = list(edge_labels) if edge_labels is not None else None
        for position, edge in enumerate(edges):
            self.add_edge(edge, labels[position] if labels else "")

    # ----------------------------------------------------------- mutation

    def add_edge(self, edge: Iterable[Vertex], label: str = "") -> bool:
        """Store a hyperedge (no-op for duplicates); returns whether added.

        Raises:
            ValueError: for an empty edge.
        """
        edge = frozenset(edge)
        if not edge:
            raise ValueError("hyperedges must be non-empty")
        if edge in self._position:
            return False
        index = len(self.edges)
        self._position[edge] = index
        self.edges.append(edge)
        self.edge_labels.append(label)
        for v in edge:
            self._incidence.setdefault(v, []).append(index)
        return True

    def remove_edge(self, edge: Iterable[Vertex]) -> bool:
        """Retract a hyperedge; returns whether it was stored.

        The last edge is swapped into the vacated slot, so edge order is
        not stable across removals (no consumer relies on it -- equality
        of hypergraphs is by edge *set*, see :meth:`as_dict`).
        """
        edge = frozenset(edge)
        index = self._position.pop(edge, None)
        if index is None:
            return False
        for v in edge:
            incident = self._incidence[v]
            incident.remove(index)
            if not incident:
                del self._incidence[v]
        last = len(self.edges) - 1
        if index != last:
            moved = self.edges[last]
            self.edges[index] = moved
            self.edge_labels[index] = self.edge_labels[last]
            self._position[moved] = index
            for v in moved:
                incident = self._incidence[v]
                incident[incident.index(last)] = index
        self.edges.pop()
        self.edge_labels.pop()
        return True

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.edges)

    @property
    def vertex_count(self) -> int:
        """Number of distinct conflicting tuples."""
        return len(self._incidence)

    def conflicting_vertices(self) -> Iterator[Vertex]:
        """All tuples that participate in at least one conflict."""
        return iter(self._incidence.keys())

    def is_conflicting(self, v: Vertex) -> bool:
        """Whether a tuple participates in any conflict."""
        return v in self._incidence

    def edges_of(self, v: Vertex) -> list[frozenset[Vertex]]:
        """The hyperedges containing ``v`` (empty when conflict-free)."""
        return [self.edges[index] for index in self._incidence.get(v, ())]

    def contains_edge(self, edge: Iterable[Vertex]) -> bool:
        """Whether this exact hyperedge is stored."""
        return frozenset(edge) in self._position

    def label_of(self, edge: Iterable[Vertex]) -> str:
        """The label of a stored edge.

        Raises:
            KeyError: when the edge is not stored.
        """
        return self.edge_labels[self._position[frozenset(edge)]]

    def subset_edges(self, vertices: Iterable[Vertex]) -> list[frozenset[Vertex]]:
        """Stored edges that are subsets of ``vertices`` (inclusive)."""
        vertex_set = frozenset(vertices)
        found: list[frozenset[Vertex]] = []
        checked: set[int] = set()
        for v in vertex_set:
            for index in self._incidence.get(v, ()):
                if index in checked:
                    continue
                checked.add(index)
                if self.edges[index] <= vertex_set:
                    found.append(self.edges[index])
        return found

    def superset_edges(self, vertices: Iterable[Vertex]) -> list[frozenset[Vertex]]:
        """Stored edges strictly containing ``vertices``."""
        vertex_set = frozenset(vertices)
        if not vertex_set:
            return []
        # A superset is incident to every vertex; scan the shortest list.
        probe = min(
            vertex_set, key=lambda u: len(self._incidence.get(u, ()))
        )
        return [
            self.edges[index]
            for index in self._incidence.get(probe, ())
            if vertex_set < self.edges[index]
        ]

    def as_dict(self) -> dict[frozenset[Vertex], str]:
        """``edge -> label`` (the canonical, order-free representation)."""
        return dict(zip(self.edges, self.edge_labels))

    def degree(self, v: Vertex) -> int:
        """Number of hyperedges containing ``v``."""
        return len(self._incidence.get(v, ()))

    def is_independent(self, vertices: Iterable[Vertex]) -> bool:
        """Whether no hyperedge is fully contained in ``vertices``.

        Repairs are exactly the *maximal* independent sets; the Prover
        uses this check on small candidate sets (the union of the
        positive facts and the chosen covering hyperedges).
        """
        vertex_set = set(vertices)
        checked: set[int] = set()
        for v in vertex_set:
            for index in self._incidence.get(v, ()):
                if index in checked:
                    continue
                checked.add(index)
                if self.edges[index] <= vertex_set:
                    return False
        return True

    def conflicting_tids(self, relation: str) -> frozenset[int]:
        """Tids of the conflicting tuples of one relation."""
        key = relation.lower()
        return frozenset(
            v.tid for v in self._incidence.keys() if v.relation == key
        )

    def always_deleted(self) -> frozenset[Vertex]:
        """Tuples in a singleton hyperedge: they belong to *no* repair.

        (A single tuple can violate a denial constraint by itself, e.g.
        a CHECK-style denial ``NOT (R(t) AND t.a < 0)``.)
        """
        return frozenset(
            next(iter(edge)) for edge in self.edges if len(edge) == 1
        )

    def summary(self) -> dict[str, object]:
        """Size statistics (reported by benchmarks and examples)."""
        sizes = [len(edge) for edge in self.edges]
        per_relation: dict[str, int] = {}
        for v in self._incidence:
            per_relation[v.relation] = per_relation.get(v.relation, 0) + 1
        return {
            "edges": len(self.edges),
            "conflicting_tuples": len(self._incidence),
            "max_edge_size": max(sizes, default=0),
            "singleton_edges": sum(1 for size in sizes if size == 1),
            "conflicting_per_relation": per_relation,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        info = self.summary()
        return (
            f"ConflictHypergraph(edges={info['edges']},"
            f" conflicting_tuples={info['conflicting_tuples']})"
        )


def minimal_edges(
    edges: Iterable[frozenset[Vertex]],
    labels: Optional[Sequence[str]] = None,
) -> tuple[list[frozenset[Vertex]], list[str]]:
    """Drop duplicate and non-minimal violation sets.

    A hyperedge that strictly contains another violation is redundant:
    any repair already excludes part of the smaller violation.
    """
    unique: dict[frozenset[Vertex], str] = {}
    label_list = list(labels) if labels is not None else None
    for position, edge in enumerate(edges):
        if edge not in unique:
            unique[edge] = label_list[position] if label_list else ""
    ordered = sorted(unique.keys(), key=len)
    kept: list[frozenset[Vertex]] = []
    kept_labels: list[str] = []
    for edge in ordered:
        if any(smaller < edge for smaller in kept):
            continue
        kept.append(edge)
        kept_labels.append(unique[edge])
    return kept, kept_labels
