"""Replica conflict-hypergraph maintenance over the change feed.

The road to sharded consistent query answering runs through one
capability: rebuilding conflict state *away* from the process that owns
the writes.  A :class:`ReplicaHypergraph` attaches to a
:class:`~repro.engine.feed.ChangeFeed` under a consumer group and keeps
three things in lock-step:

1. **A replica database.**  The feed carries serialized schemas (DDL
   records) and full rows under their original tids, so the replica
   rebuilds an exact copy of the primary's state -- tids included, which
   matters because tids are the hypergraph's vertices.
2. **A committed offset per topic.**  The group's committed offsets mark
   the *cut* the replica has durably reached; on re-attach (e.g. after a
   process restart) the replica replays the committed prefix of the feed
   to rebuild its database, runs full conflict detection on it, and
   resumes consuming from the cut.
3. **The conflict hypergraph.**  Past bootstrap, records are folded in
   through :class:`~repro.conflicts.incremental.IncrementalDetector`, so
   a replica tracks the primary at delta cost.  The maintained invariant
   -- asserted by the property suite -- is that after every committed
   sync the graph equals full re-detection over the replica database.

Apply-then-commit ordering makes the pipeline exactly-once: records are
applied to the replica database, the offsets commit, and only then does
the hypergraph advance.  A crash anywhere in between re-attaches from
the last commit, where full detection reconstructs whatever the
incremental layer had not persisted (the hypergraph itself is derived
state and is never written to disk).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.conflicts.detection import detect_conflicts
from repro.conflicts.hypergraph import ConflictHypergraph
from repro.conflicts.incremental import DeltaStats, IncrementalDetector
from repro.engine.database import Database, apply_feed_record
from repro.engine.feed import (
    RECORD_CHANGE,
    ChangeFeed,
    FeedRecord,
)
from repro.errors import CatalogError, FeedError


@dataclass
class ReplicaSync:
    """What one :meth:`ReplicaHypergraph.sync` call did.

    Attributes:
        records: feed records consumed (data + DDL).
        mode: ``"noop"`` (nothing pending), ``"incremental"`` (delta
            maintenance), ``"full"`` (re-detection; DDL or recovery) or
            ``"deferred"`` (constraint tables still missing at the cut).
        lag: records still pending past this sync's commit.
        seconds: wall-clock time of the sync.
        delta: incremental-apply statistics (incremental mode only).
    """

    records: int = 0
    mode: str = "noop"
    lag: int = 0
    seconds: float = 0.0
    delta: Optional[DeltaStats] = None


class ReplicaHypergraph:
    """A conflict hypergraph maintained from a change feed.

    Args:
        feed: the feed to consume (typically a durable
            :class:`~repro.engine.feed.ChangeFeed` opened on the
            primary's directory).
        constraints: the constraint set (must match the primary's for
            the replica to mean anything).
        group: consumer-group name; committed offsets are stored under
            it, so re-attaching with the same name resumes the replica.

    Raises:
        FeedError: when the committed prefix is no longer retained (an
            in-memory feed overflowed past this group).
    """

    def __init__(
        self,
        feed: ChangeFeed,
        constraints: Iterable[object],
        group: str = "replica",
    ) -> None:
        self.feed = feed
        self.group = group
        self.constraints = list(constraints)
        if not feed.durable and feed.dropped:
            raise FeedError(
                "cannot attach a replica to an in-memory feed that already"
                f" dropped {feed.dropped} unconsumed records -- attach the"
                " replica before the primary takes writes, or use a"
                " durable feed"
            )
        self._consumer = feed.consumer(group, start="beginning")
        #: the replica's own database, rebuilt purely from the feed.
        self.db = Database()
        self._detector: Optional[IncrementalDetector] = None
        self._needs_full = False
        self._bootstrap()

    # ------------------------------------------------------------ bootstrap

    def _bootstrap(self) -> None:
        """Replay the committed prefix, then full-detect on it."""
        prefix = self.feed.records_upto(self._consumer.committed)
        with self.db.changes.feed.suspended():
            for record in prefix:
                apply_feed_record(self.db, record)
        try:
            self._full_detect()
        except CatalogError:
            # A fresh replica attaches before the CREATE TABLE records
            # its constraints need have replicated; the first sync (which
            # carries that DDL) runs the deferred full detection.
            self._detector = None
            self._needs_full = True

    def _full_detect(self) -> None:
        report = detect_conflicts(self.db, self.constraints, keep_raw=True)
        self._detector = IncrementalDetector(self.db, self.constraints)
        self._detector.bootstrap(report)
        self._needs_full = False

    # ----------------------------------------------------------- consuming

    @property
    def graph(self) -> ConflictHypergraph:
        """The maintained conflict hypergraph.

        Unavailable only between a deferred bootstrap (constraints whose
        tables have not replicated yet) and the first :meth:`sync`.
        """
        assert self._detector is not None and self._detector.graph is not None
        return self._detector.graph

    @property
    def ready(self) -> bool:
        """Whether a hypergraph is maintained (False while detection is
        deferred because constraint tables have not replicated yet)."""
        return self._detector is not None

    @property
    def lag(self) -> int:
        """Feed records past this replica's committed cut."""
        return self._consumer.lag

    def sync(self, limit: Optional[int] = None) -> ReplicaSync:
        """Consume pending feed records and advance the hypergraph.

        ``limit`` bounds the records consumed (e.g. to stop at an
        intermediate cut); the commit happens at the batch boundary, so
        every return is a valid restart point.

        Raises:
            FeedError: when the feed dropped history this replica never
                consumed (in-memory overflow) -- the replica can no
                longer converge and must be rebuilt from a fresh feed.
            ConstraintError: when the new state leaves the restricted
                foreign-key class (full re-detection would raise too).
        """
        started = time.perf_counter()
        records, lost = self._consumer.poll(limit)
        if lost:
            raise FeedError(
                f"replica group {self.group!r}: feed history was dropped"
                " before it was consumed; the replica cannot converge"
            )
        if not records:
            if self._needs_full:  # recover from an earlier failed apply
                try:
                    self._full_detect()
                    mode = "full"
                except CatalogError:
                    mode = "deferred"  # constraint tables still missing
                return ReplicaSync(
                    mode=mode,
                    lag=self._consumer.lag,
                    seconds=time.perf_counter() - started,
                )
            return ReplicaSync(
                mode="noop",
                lag=self._consumer.lag,
                seconds=time.perf_counter() - started,
            )
        # 1) Advance the replica database (the durable part of the cut).
        ddl = False
        with self.db.changes.feed.suspended():
            for record in records:
                ddl = ddl or record.kind != RECORD_CHANGE
                apply_feed_record(self.db, record)
        # 2) Commit the cut: a crash from here on re-attaches *after*
        #    these records, and full detection rebuilds the graph.
        self._consumer.commit()
        # 3) Advance the hypergraph: incrementally when possible, by
        #    full re-detection across DDL or after a failed apply.
        sync = ReplicaSync(records=len(records))
        if ddl or self._needs_full:
            # Drop the pre-DDL detector before re-detecting: if full
            # detection raises (e.g. the new state is outside the
            # restricted FK class) the stale graph must not keep taking
            # incremental deltas on later syncs.
            self._detector = None
            self._needs_full = True
            try:
                self._full_detect()  # clears _needs_full on success
                sync.mode = "full"
            except CatalogError:
                # A cut can fall between DDL records, leaving constraint
                # tables missing *at this cut*; stay deferred until the
                # rest of the schema replicates.
                sync.mode = "deferred"
        else:
            try:
                sync.delta = self._apply_incremental(records)
            except Exception:
                # The database already advanced; make the next sync (or
                # the caller's retry) rebuild the graph from it.
                self._needs_full = True
                raise
            sync.mode = "incremental"
        sync.lag = self._consumer.lag
        sync.seconds = time.perf_counter() - started
        return sync

    def _apply_incremental(self, records: Sequence[FeedRecord]) -> DeltaStats:
        assert self._detector is not None
        return self._detector.apply_records(
            [record for record in records if record.kind == RECORD_CHANGE]
        )

    def close(self) -> None:
        """Detach from the feed (durable committed offsets survive)."""
        self._consumer.close()
