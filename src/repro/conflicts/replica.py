"""Replica conflict-hypergraph maintenance over the change feed.

The road to sharded consistent query answering runs through one
capability: rebuilding conflict state *away* from the process that owns
the writes.  A :class:`ReplicaHypergraph` attaches to a
:class:`~repro.engine.feed.ChangeFeed` under a consumer group and keeps
three things in lock-step:

1. **A replica database.**  The feed carries serialized schemas (DDL
   records) and full rows under their original tids, so the replica
   rebuilds an exact copy of the primary's state -- tids included, which
   matters because tids are the hypergraph's vertices.
2. **A committed offset per topic.**  The group's committed offsets mark
   the *cut* the replica has durably reached; on re-attach (e.g. after a
   process restart) the replica *streams* the committed prefix of the
   feed to rebuild its database (bounded memory: one segment per topic
   resident at a time), runs full conflict detection on it, and resumes
   consuming from the cut.
3. **The conflict hypergraph.**  Past bootstrap, records are folded in
   through :class:`~repro.conflicts.incremental.IncrementalDetector`, so
   a replica tracks the primary at delta cost.  The maintained invariant
   -- asserted by the property suite -- is that after every committed
   sync the graph equals full re-detection over the replica database.

Attached to a *reader* feed instance (a second ``ChangeFeed`` opened on
the writer's directory), the replica is a genuinely live follower:
every :meth:`ReplicaHypergraph.sync` re-scans the directory, so appends
the writer flushed after the replica opened stream in; the
:meth:`ReplicaHypergraph.follow` loop packages that into a daemon-style
tail (surfaced in the CLI as ``.feed tail``).

Apply-then-commit ordering makes the pipeline exactly-once: records are
applied to the replica database, the offsets commit, and only then does
the hypergraph advance.  A crash anywhere in between re-attaches from
the last commit, where full detection reconstructs whatever the
incremental layer had not persisted (the hypergraph itself is derived
state and is never written to disk).

**Retention.**  When the feed truncates sealed segments
(``retention="truncate"``), a re-attaching replica may find its
committed prefix gone.  Its escape hatch is the group *snapshot*: a
serialized copy of the replica database stored at a committed cut
(:meth:`ReplicaHypergraph.checkpoint`, and automatically on
:meth:`ReplicaHypergraph.close`).  Bootstrap then restores the snapshot
and replays only the still-retained gap -- the feed never truncates
past a group's snapshot, so the gap is always readable.  The snapshot
wire format lives in :mod:`repro.engine.snapshot` and is shared with
the durable writer's own checkpoints
(:meth:`repro.engine.database.Database.checkpoint`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.conflicts.detection import detect_conflicts
from repro.conflicts.hypergraph import ConflictHypergraph
from repro.conflicts.incremental import DeltaStats, IncrementalDetector
from repro.engine.database import (
    REPLAY_BATCH_RECORDS,
    WRITER_GROUP,
    Database,
    apply_feed_record,
    apply_feed_records,
)
from repro.engine.feed import (
    RECORD_CHANGE,
    SCHEMA_TOPIC,
    ChangeFeed,
    FeedRecord,
)
from repro.engine.snapshot import restore_database, snapshot_database
from repro.errors import CatalogError, FeedError


@dataclass
class ReplicaSync:
    """What one :meth:`ReplicaHypergraph.sync` call did.

    Attributes:
        records: feed records consumed (data + DDL).
        mode: ``"noop"`` (nothing pending), ``"incremental"`` (delta
            maintenance), ``"full"`` (re-detection; DDL or recovery) or
            ``"deferred"`` (constraint tables still missing at the cut).
        lag: records still pending past this sync's commit.
        seconds: wall-clock time of the sync.
        delta: incremental-apply statistics (incremental mode only).
    """

    records: int = 0
    mode: str = "noop"
    lag: int = 0
    seconds: float = 0.0
    delta: Optional[DeltaStats] = None


@dataclass
class ReplicaFollow:
    """Summary of one :meth:`ReplicaHypergraph.follow` run."""

    syncs: int = 0
    records: int = 0
    seconds: float = 0.0


class ReplicaHypergraph:
    """A conflict hypergraph maintained from a change feed.

    Args:
        feed: the feed to consume (typically a durable
            :class:`~repro.engine.feed.ChangeFeed` opened on the
            primary's directory -- the same instance, or a second
            *reader* instance in another process, which is then tailed
            live).
        constraints: the constraint set (must match the primary's for
            the replica to mean anything).
        group: consumer-group name; committed offsets are stored under
            it, so re-attaching with the same name resumes the replica.
        snapshots: whether to persist recovery snapshots (on
            :meth:`close` and :meth:`checkpoint`); meaningless on
            in-memory feeds.  Snapshots are what let the replica
            re-attach after feed retention truncated its prefix.
        checkpoint_records: when set, automatically checkpoint after
            this many records have been committed since the last one.
        topics: subscribe to a subset of the feed's topics (relation
            names; the ``_schema`` topic is always included so DDL
            replicates).  The replica then maintains a *partial*
            database -- only the subscribed relations carry rows --
            which is the shard-worker shape
            (:class:`~repro.conflicts.shard.ShardWorker`); its retention
            floor only pins the subscribed topics.
        extra_referenced: FK-referenced relations protected by
            constraints *outside* this replica's list (other shards');
            forwarded into detection's restricted-class check.
        batch_apply: apply polled records to the replica database through
            the batched :func:`~repro.engine.database.apply_feed_records`
            (the default) instead of record-at-a-time; the final state is
            identical either way -- the switch exists so benchmarks can
            measure the per-record baseline.
        bootstrap: ``"replay"`` (default) streams the committed prefix
            and falls back to the group snapshot only when retention
            truncated it; ``"snapshot"`` restores the group snapshot
            first whenever one exists and replays only the gap -- what
            a supervisor respawning a crashed shard worker wants, since
            it makes restart cost proportional to the suffix, not the
            history.  ``restore_mode`` / ``restore_records`` record
            what actually happened.

    Raises:
        FeedError: when the committed prefix is no longer retained and
            no snapshot covers it (an in-memory feed overflowed, or a
            durable feed truncated past a group that never
            checkpointed).
    """

    def __init__(
        self,
        feed: ChangeFeed,
        constraints: Iterable[object],
        group: str = "replica",
        snapshots: bool = True,
        checkpoint_records: Optional[int] = None,
        topics: Optional[Iterable[str]] = None,
        extra_referenced: Iterable[str] = (),
        batch_apply: bool = True,
        bootstrap: str = "replay",
    ) -> None:
        if bootstrap not in ("replay", "snapshot"):
            raise FeedError(f"unknown bootstrap mode {bootstrap!r}")
        self.feed = feed
        self.group = group
        self.batch_apply = batch_apply
        self._prefer_snapshot = bootstrap == "snapshot"
        #: how the last bootstrap rebuilt the database: ``"replay"``
        #: (committed prefix streamed), ``"snapshot"`` (group snapshot
        #: restored + gap replayed) or ``"seeded"`` (writer checkpoint).
        self.restore_mode = "replay"
        #: feed records replayed by the last bootstrap.
        self.restore_records = 0
        #: per-topic records applied over this replica's lifetime
        #: (bootstrap replay included) -- what lets a handoff assert
        #: "resumed from the cut, replayed exactly the retained suffix".
        self.applied_records: dict[str, int] = {}
        self.constraints = list(constraints)
        self.topics = (
            None
            if topics is None
            else frozenset(
                {str(t).lower() for t in topics} | {SCHEMA_TOPIC}
            )
        )
        self.extra_referenced = frozenset(
            relation.lower() for relation in extra_referenced
        )
        if not feed.durable and feed.dropped:
            raise FeedError(
                "cannot attach a replica to an in-memory feed that already"
                f" dropped {feed.dropped} unconsumed records -- attach the"
                " replica before the primary takes writes, or use a"
                " durable feed"
            )
        self._snapshots = snapshots and feed.durable
        self.checkpoint_records = checkpoint_records
        self._since_checkpoint = 0
        self._closed = False
        self._consumer = feed.consumer(
            group, start="beginning", topics=self.topics
        )
        try:
            #: the replica's own database, rebuilt purely from the feed.
            self.db = Database()
            self._detector: Optional[IncrementalDetector] = None
            self._needs_full = False
            self._bootstrap()
        except BaseException:
            # A failed bootstrap must release the consumer-group
            # registration, or the half-built replica pins feed
            # retention forever.
            self._consumer.close()
            raise

    # ------------------------------------------------------------ bootstrap

    def _bootstrap(self) -> None:
        """Stream the committed prefix, then full-detect on it.

        The prefix is consumed record-by-record (one feed segment per
        topic resident at a time), so bootstrap memory is bounded by the
        replica database, not the feed history.  When retention
        truncated the prefix, the group's snapshot is restored first and
        only the still-retained gap is replayed; a *fresh* group on a
        feed whose prefix is already gone (it has no snapshot of its
        own) seeds itself from the writer's checkpoint instead.
        """
        committed = self._consumer.committed
        if not committed and self._seed_from_writer_checkpoint():
            self.restore_mode = "seeded"
        elif self._prefer_snapshot and self._restore_from_snapshot(committed):
            pass  # snapshot + gap replay, done
        else:
            try:
                # iter_records validates retention eagerly, but segment
                # files are read lazily -- a truncation racing us can
                # still surface as a FeedError mid-replay, so the whole
                # replay is inside the fallback's try.
                with self.db.changes.feed.suspended():
                    self.restore_records = self._apply_stream(
                        self.feed.iter_records(upto=committed)
                    )
                self.restore_mode = "replay"
            except FeedError:
                self.db = Database()  # discard the half-applied replay
                if not self._restore_from_snapshot(committed):
                    raise
        try:
            self._full_detect()
        except CatalogError:
            # A fresh replica attaches before the CREATE TABLE records
            # its constraints need have replicated; the first sync (which
            # carries that DDL) runs the deferred full detection.
            self._detector = None
            self._needs_full = True

    def _apply_stream(self, records: Iterable[FeedRecord]) -> int:
        """Apply a record stream to the replica database in batches.

        Bootstrap replays feed segments lazily (one resident per topic),
        so batching must be bounded: records accumulate up to the replay
        batch size, then one batched apply folds them in.  With
        ``batch_apply`` off, falls back to record-at-a-time (the
        benchmark baseline); the resulting state is identical.  Returns
        the number of records applied (and counts them per topic into
        ``applied_records``).
        """
        applied = 0
        if not self.batch_apply:
            for record in records:
                apply_feed_record(self.db, record)
                applied += 1
                self.applied_records[record.topic] = (
                    self.applied_records.get(record.topic, 0) + 1
                )
            return applied
        batch: list[FeedRecord] = []
        for record in records:
            batch.append(record)
            self.applied_records[record.topic] = (
                self.applied_records.get(record.topic, 0) + 1
            )
            if len(batch) >= REPLAY_BATCH_RECORDS:
                apply_feed_records(self.db, batch)
                applied += len(batch)
                batch.clear()
        if batch:
            apply_feed_records(self.db, batch)
            applied += len(batch)
        return applied

    def _restore_from_snapshot(self, committed: dict[str, int]) -> bool:
        """Restore the group's snapshot into the (fresh) database and
        replay the retained gap up to ``committed``.  Returns False when
        the group never stored a snapshot."""
        snapshot = self._consumer.load_snapshot()
        if snapshot is None:
            return False
        snap_committed, payload = snapshot
        self.applied_records = {}
        with self.db.changes.feed.suspended():
            restore_database(self.db, payload)
            self.restore_records = self._apply_stream(
                self.feed.iter_records(start=snap_committed, upto=committed)
            )
        self.restore_mode = "snapshot"
        return True

    def _seed_from_writer_checkpoint(self) -> bool:
        """Bootstrap a brand-new group over an already-reclaimed feed.

        A group with no committed offsets wants the history from offset
        0 -- which retention may have reclaimed long before the group
        existed.  The writer's checkpoint (kept in the feed directory,
        and never truncated past) carries exactly the state at its cut:
        restore it, commit the group at that cut, and consume the
        retained records from there.  Returns whether seeding happened
        (False on in-memory feeds, unreclaimed feeds, or when no writer
        checkpoint exists -- the plain replay handles those).
        """
        if not self.feed.durable:
            return False
        # A reader instance's view can predate a foreign reclaim: judge
        # replayability from the live directory, not stale memory.
        self.feed.refresh()
        if all(
            t.start == 0
            for t in self.feed.topics()
            if self.topics is None or t.name in self.topics
        ):
            return False  # the (subscribed) history is still replayable
        seeded = self.feed.load_snapshot(WRITER_GROUP)
        if seeded is None:
            return False
        cut, payload = seeded
        # A subscribed replica restores only its slice of the writer's
        # checkpoint (schemas in full -- detection needs the catalog --
        # rows only for subscribed relations); seek() drops the foreign
        # topics from the cut.
        restore_database(self.db, payload, tables=self.topics)
        self._consumer.seek(cut)
        self._consumer.commit()
        return True

    def _mark(self, phase: str, topic: Optional[str] = None) -> None:
        """Crash-phase seam: called at the durability-critical points of
        the pipeline (``"apply"`` after records hit the database but
        before the offset commit, ``"checkpoint"`` just before the
        snapshot store, and the shard handoff phases ``"release"`` /
        ``"adopt"``).  A no-op here; the process executor's chaos layer
        overrides it to SIGKILL the worker at an armed phase, so the
        fault-injection suite can pin recovery at every boundary."""
        return None

    def _full_detect(self) -> None:
        report = detect_conflicts(
            self.db,
            self.constraints,
            keep_raw=True,
            extra_referenced=self.extra_referenced,
        )
        self._detector = IncrementalDetector(
            self.db, self.constraints, extra_referenced=self.extra_referenced
        )
        self._detector.bootstrap(report)
        self._needs_full = False

    # ----------------------------------------------------------- snapshots

    def checkpoint(self) -> None:
        """Persist a recovery snapshot of the replica database at the
        group's current committed cut.

        The feed never truncates past a group's snapshot, so after a
        checkpoint the segments below the cut become reclaimable -- and
        a later re-attach restores the snapshot instead of replaying
        them.

        Raises:
            FeedError: on an in-memory feed (nothing durable to bind to).
        """
        self._mark("checkpoint")
        self._consumer.store_snapshot(snapshot_database(self.db))
        self._since_checkpoint = 0

    # ----------------------------------------------------------- consuming

    @property
    def graph(self) -> ConflictHypergraph:
        """The maintained conflict hypergraph.

        Unavailable only between a deferred bootstrap (constraints whose
        tables have not replicated yet) and the first :meth:`sync`.
        """
        assert self._detector is not None and self._detector.graph is not None
        return self._detector.graph

    @property
    def ready(self) -> bool:
        """Whether a hypergraph is maintained (False while detection is
        deferred because constraint tables have not replicated yet)."""
        return self._detector is not None

    @property
    def lag(self) -> int:
        """Feed records past this replica's committed cut (re-scans the
        directory on reader instances, so writer appends show up)."""
        return self._consumer.lag

    @property
    def committed(self) -> dict[str, int]:
        """The consumer group's committed offset per topic (a copy)."""
        return self._consumer.committed

    def sync(self, limit: Optional[int] = None) -> ReplicaSync:
        """Consume pending feed records and advance the hypergraph.

        ``limit`` bounds the records consumed (e.g. to stop at an
        intermediate cut); the commit happens at the batch boundary, so
        every return is a valid restart point.

        Raises:
            FeedError: when the feed dropped history this replica never
                consumed (in-memory overflow, or a truncation that
                outran this group) -- the replica can no longer converge
                and must be rebuilt from a fresh feed.
            ConstraintError: when the new state leaves the restricted
                foreign-key class (full re-detection would raise too).
        """
        started = time.perf_counter()
        records, lost = self._consumer.poll(limit)
        if lost:
            raise FeedError(
                f"replica group {self.group!r}: feed history was dropped"
                " before it was consumed; the replica cannot converge"
            )
        if not records:
            if self._needs_full:  # recover from an earlier failed apply
                try:
                    self._full_detect()
                    mode = "full"
                except CatalogError:
                    mode = "deferred"  # constraint tables still missing
                return ReplicaSync(
                    mode=mode,
                    lag=self._consumer.lag,
                    seconds=time.perf_counter() - started,
                )
            return ReplicaSync(
                mode="noop",
                lag=self._consumer.lag,
                seconds=time.perf_counter() - started,
            )
        # 1) Advance the replica database (the durable part of the cut),
        #    batched so a big poll amortizes per-record overhead.
        ddl = any(record.kind != RECORD_CHANGE for record in records)
        with self.db.changes.feed.suspended():
            self._apply_stream(records)
        self._mark("apply")
        # 2) Commit the cut: a crash from here on re-attaches *after*
        #    these records, and full detection rebuilds the graph.
        self._consumer.commit()
        self._since_checkpoint += len(records)
        if (
            self._snapshots
            and self.checkpoint_records is not None
            and self._since_checkpoint >= self.checkpoint_records
        ):
            self.checkpoint()
        # 3) Advance the hypergraph: incrementally when possible, by
        #    full re-detection across DDL or after a failed apply.
        sync = ReplicaSync(records=len(records))
        if ddl or self._needs_full:
            # Drop the pre-DDL detector before re-detecting: if full
            # detection raises (e.g. the new state is outside the
            # restricted FK class) the stale graph must not keep taking
            # incremental deltas on later syncs.
            self._detector = None
            self._needs_full = True
            try:
                self._full_detect()  # clears _needs_full on success
                sync.mode = "full"
            except CatalogError:
                # A cut can fall between DDL records, leaving constraint
                # tables missing *at this cut*; stay deferred until the
                # rest of the schema replicates.
                sync.mode = "deferred"
        else:
            try:
                sync.delta = self._apply_incremental(records)
            except Exception:
                # The database already advanced; make the next sync (or
                # the caller's retry) rebuild the graph from it.
                self._needs_full = True
                raise
            sync.mode = "incremental"
        sync.lag = self._consumer.lag
        sync.seconds = time.perf_counter() - started
        return sync

    def follow(
        self,
        poll_interval: float = 0.1,
        max_seconds: Optional[float] = None,
        idle_limit: Optional[int] = None,
        limit: Optional[int] = None,
        on_sync: Optional[Callable[[ReplicaSync], None]] = None,
    ) -> ReplicaFollow:
        """Continuously drain *and live-tail* the feed.

        Each iteration syncs (bounded by ``limit`` records when given);
        when nothing was pending the loop sleeps ``poll_interval`` and
        re-polls -- on a reader feed instance that re-scans the
        directory, so appends from the writer process stream in as they
        are flushed.  The loop ends after ``idle_limit`` consecutive
        empty polls, or once ``max_seconds`` elapsed; with neither set
        it follows forever (the daemon form).  ``on_sync`` is called
        with each non-empty :class:`ReplicaSync`.
        """
        started = time.perf_counter()
        summary = ReplicaFollow()
        idle = 0
        while True:
            sync = self.sync(limit)
            if sync.records:
                idle = 0
                summary.syncs += 1
                summary.records += sync.records
                if on_sync is not None:
                    on_sync(sync)
            else:
                idle += 1
                if idle_limit is not None and idle >= idle_limit:
                    break
            elapsed = time.perf_counter() - started
            if max_seconds is not None and elapsed >= max_seconds:
                break
            # sync() already measured the lag at its commit; asking
            # self.lag again would re-scan the directory a second time
            # per idle tick for nothing.
            if not sync.records and sync.lag == 0:
                remaining = (
                    max_seconds - elapsed
                    if max_seconds is not None
                    else poll_interval
                )
                time.sleep(max(min(poll_interval, remaining), 0.0))
        summary.seconds = time.perf_counter() - started
        return summary

    def _apply_incremental(self, records: Sequence[FeedRecord]) -> DeltaStats:
        assert self._detector is not None
        return self._detector.apply_records(
            [record for record in records if record.kind == RECORD_CHANGE]
        )

    def close(self) -> None:
        """Checkpoint (durable feeds) and detach from the feed.

        The group's durable committed offsets -- and its snapshot --
        survive, so re-attaching under the same name resumes the
        replica even after retention truncated the raw prefix.
        """
        if self._closed:
            return
        self._closed = True
        # An abandoned consumer (simulated crash) cannot checkpoint;
        # closing the replica around it must not raise.
        if self._snapshots and not self._consumer.closed:
            self.checkpoint()
        self._consumer.close()
