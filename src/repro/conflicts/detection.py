"""Conflict Detection: populating the conflict hypergraph.

The paper's data flow (Figure 1) runs Conflict Detection once, before any
query is processed: for every denial constraint, the tuples jointly
violating it are found and stored as hyperedges.  A denial constraint's
body is structurally an SJ query over its atoms, so detection compiles
each constraint through the same plan machinery as ordinary queries
(self-joins become hash joins on the equality conjuncts -- e.g. an FD's
``t1.X = t2.X`` -- which keeps detection near-linear when conflicts are
sparse).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backends.base import Backend

from repro.constraints.denial import DenialConstraint, to_denial_constraints
from repro.constraints.foreign_key import ForeignKeyConstraint, topological_fk_order
from repro.conflicts.hypergraph import (
    ConflictHypergraph,
    Vertex,
    minimal_edges,
    vertex,
)
from repro.engine.database import Database
from repro.errors import BackendError, ConstraintError
from repro.ra.compile import compile_core
from repro.ra.sjud import Atom, SJUDCore


@dataclass
class DetectionReport:
    """What Conflict Detection did (surfaced in benchmarks / examples).

    Attributes:
        hypergraph: the resulting conflict hypergraph.
        per_constraint: constraint name -> number of violations *stored*
            for it (after minimization).
        seconds: wall-clock detection time.
        subsumed: constraint name -> violations found for it that are
            **not** stored under its name, because minimization absorbed
            them into a smaller edge or into an identical edge of another
            constraint.  Without this, a constraint whose every violation
            was absorbed silently reports 0 and benchmarks misread
            minimization as "no violations".
        mode: ``"full"`` (complete re-detection) or ``"incremental"``
            (delta maintenance applied to the existing hypergraph).
        deltas: number of change-log entries applied (incremental mode).
        edges_added / edges_retracted: hyperedge churn of the last
            incremental application.
        raw_edges / raw_labels: the pre-minimization violation stream,
            kept only when detection is asked to (``keep_raw``) so the
            incremental maintainer can bootstrap its shadow store.
    """

    hypergraph: ConflictHypergraph
    per_constraint: dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0
    subsumed: dict[str, int] = field(default_factory=dict)
    mode: str = "full"
    deltas: int = 0
    edges_added: int = 0
    edges_retracted: int = 0
    raw_edges: list[frozenset[Vertex]] | None = None
    raw_labels: list[str] | None = None

    @property
    def subsumed_total(self) -> int:
        """Total violations absorbed by minimization."""
        return sum(self.subsumed.values())


def violations_of(
    db: Database,
    constraint: DenialConstraint,
    backend: Optional["Backend"] = None,
) -> list[frozenset[Vertex]]:
    """All violation sets of one denial constraint (not yet minimized).

    The constraint body is structurally an SJ query; with a ``backend``
    its residual join is pushed down there (falling back to native
    evaluation if the backend declines), otherwise it is compiled
    through the native plan machinery as always.
    """
    core = SJUDCore(
        atoms=tuple(Atom(a.alias, a.relation) for a in constraint.atoms),
        condition=constraint.condition,
        outputs=(),
    )
    relations = [a.relation.lower() for a in constraint.atoms]
    rows: Iterable[tuple]
    if backend is not None:
        try:
            rows = backend.residual_join(core)
        except BackendError:
            rows = compile_core(core, db).rows(())
    else:
        rows = compile_core(core, db).rows(())
    results: list[frozenset[Vertex]] = []
    seen: set[frozenset[Vertex]] = set()
    for row in rows:
        edge = frozenset(
            vertex(relation, tid) for relation, tid in zip(relations, row)
        )
        if edge not in seen:
            seen.add(edge)
            results.append(edge)
    return results


def detect_conflicts(
    db: Database,
    constraints: Iterable[object],
    keep_raw: bool = False,
    extra_referenced: Iterable[str] = (),
    backend: Optional["Backend"] = None,
) -> DetectionReport:
    """Run Conflict Detection for a set of constraints.

    ``constraints`` may mix denial constraints, FDs, keys, exclusion
    constraints (anything :func:`to_denial_constraints` accepts) and
    *restricted* foreign keys (see
    :mod:`repro.constraints.foreign_key`), whose dangling tuples become
    singleton hyperedges.

    Args:
        keep_raw: also return the pre-minimization violation stream on
            the report (used to bootstrap incremental maintenance).
        extra_referenced: relations referenced by foreign keys *outside*
            ``constraints`` that the restricted-class check must still
            protect.  A shard worker evaluating only its own constraint
            slice passes the global FK-referenced set here, so a denial
            conflict on a relation some *other* shard's FK references
            raises exactly like monolithic detection would.
        backend: an execution backend to push each denial constraint's
            residual join to (see :mod:`repro.backends`); the FK
            dangling pass always runs natively, and a backend that
            declines a join falls back to native evaluation.

    Raises:
        ConstraintError: when a foreign key falls outside the restricted
            class (cyclic references, or a referenced relation involved
            in choice conflicts).
    """
    started = time.perf_counter()
    foreign_keys = [c for c in constraints if isinstance(c, ForeignKeyConstraint)]
    denials = to_denial_constraints(
        c for c in constraints if not isinstance(c, ForeignKeyConstraint)
    )
    referenced = {fk.referenced.lower() for fk in foreign_keys} | {
        relation.lower() for relation in extra_referenced
    }
    edges: list[frozenset[Vertex]] = []
    labels: list[str] = []
    per_constraint: dict[str, int] = {}
    for constraint in denials:
        found = violations_of(db, constraint, backend=backend)
        per_constraint[constraint.name] = len(found)
        edges.extend(found)
        labels.extend([constraint.name] * len(found))
    if referenced:
        for edge in edges:
            ensure_edge_in_restricted_class(edge, referenced)
    if foreign_keys:
        fk_edges, fk_labels, fk_counts = _foreign_key_violations(
            db, foreign_keys, edges
        )
        edges.extend(fk_edges)
        labels.extend(fk_labels)
        per_constraint.update(fk_counts)
    kept, kept_labels = minimal_edges(edges, labels)
    hypergraph = ConflictHypergraph(kept, kept_labels)
    # Re-count after minimization so the report reflects stored edges;
    # the difference per constraint is what minimization absorbed.
    found = dict(per_constraint)
    stored: dict[str, int] = {}
    for label in hypergraph.edge_labels:
        stored[label] = stored.get(label, 0) + 1
    subsumed: dict[str, int] = {}
    for name in per_constraint:
        per_constraint[name] = stored.get(name, 0)
        subsumed[name] = found[name] - per_constraint[name]
    elapsed = time.perf_counter() - started
    return DetectionReport(
        hypergraph,
        per_constraint,
        elapsed,
        subsumed=subsumed,
        raw_edges=edges if keep_raw else None,
        raw_labels=labels if keep_raw else None,
    )


def ensure_edge_in_restricted_class(
    edge: frozenset[Vertex], referenced: frozenset[str] | set[str]
) -> None:
    """Reject a multi-tuple conflict touching an FK-referenced relation.

    A referenced relation may only lose tuples deterministically --
    through singleton denial edges or upstream FK dangling -- never
    through a choice conflict (an edge of size >= 2).  Shared by full
    detection and incremental maintenance so both reject identically.

    Raises:
        ConstraintError: when the edge violates the restriction.
    """
    if len(edge) < 2:
        return
    for v in edge:
        if v.relation in referenced:
            raise ConstraintError(
                f"relation {v.relation!r} is referenced by a foreign key"
                " but participates in a multi-tuple conflict: outside"
                " the restricted foreign-key class (repairing such"
                " databases by deletions is not hypergraph-expressible)"
            )


def dangling_child_tids(
    db: Database, fk: ForeignKeyConstraint, deleted: dict[str, set[int]]
) -> list[int]:
    """Tids of ``fk.referencing`` rows whose key dangles, given ``deleted``.

    ``deleted`` maps relation -> certainly-deleted tids (singleton denial
    edges plus upstream danglings); the returned tids are appended to it,
    so chained FKs processed in topological order cascade.  This is the
    single implementation of the dangling semantics (MATCH SIMPLE NULLs,
    surviving-key set) used by full detection and incremental
    maintenance alike.
    """
    child = db.catalog.table(fk.referencing)
    parent = db.catalog.table(fk.referenced)
    child_indexes = [child.schema.index_of(c) for c in fk.columns]
    parent_indexes = [parent.schema.index_of(c) for c in fk.ref_columns]
    parent_deleted = deleted.get(fk.referenced.lower(), set())
    surviving_keys = {
        tuple(row[i] for i in parent_indexes)
        for tid, row in parent.items()
        if tid not in parent_deleted
    }
    child_key = fk.referencing.lower()
    dangling: list[int] = []
    for tid, row in child.items():
        key = tuple(row[i] for i in child_indexes)
        if not fk.match_nulls and any(part is None for part in key):
            continue  # MATCH SIMPLE: NULL keys reference nothing
        if key in surviving_keys:
            continue
        dangling.append(tid)
        deleted.setdefault(child_key, set()).add(tid)
    return dangling


def _foreign_key_violations(
    db: Database,
    foreign_keys: list[ForeignKeyConstraint],
    denial_edges: list[frozenset[Vertex]],
) -> tuple[list[frozenset[Vertex]], list[str], dict[str, int]]:
    """Dangling tuples of restricted foreign keys, as singleton edges.

    The caller has already verified the denial edges stay inside the
    restricted class (:func:`ensure_edge_in_restricted_class`).
    """
    # Deterministic deletions seen so far: singleton denial edges.
    deleted: dict[str, set[int]] = {}
    for edge in denial_edges:
        if len(edge) == 1:
            (v,) = edge
            deleted.setdefault(v.relation, set()).add(v.tid)

    edges: list[frozenset[Vertex]] = []
    labels: list[str] = []
    counts: dict[str, int] = {}
    for fk in topological_fk_order(foreign_keys):
        label = str(fk)
        child_key = fk.referencing.lower()
        dangling = dangling_child_tids(db, fk, deleted)
        counts[label] = len(dangling)
        for tid in dangling:
            edges.append(frozenset({vertex(child_key, tid)}))
            labels.append(label)
    return edges, labels, counts
