"""Incremental maintenance of the conflict hypergraph.

The paper's Figure-1 data flow runs Conflict Detection **once**: the
constraints and the database feed the detector, the detector feeds the
conflict hypergraph, and every query afterwards (Enveloping, Evaluation,
Prover) reads the hypergraph from main memory.  That picture is static --
any INSERT/DELETE/UPDATE invalidated the hypergraph wholesale and forced
full re-detection over every constraint and every tuple.

This module keeps Figure 1 alive under update traffic by treating the
change log as a third input arrow into Conflict Detection:

::

    IC ──────────────┐
    DB ── deltas ──> Incremental Detection ──> Conflict Hypergraph
                      (bind one atom per     (edited in place; the
                       constraint to each     rest of the pipeline is
                       changed tuple)         unchanged)

For a batch of deltas the maintainer:

1. **retracts** every hyperedge incident to a changed tuple (a deleted
   vertex can no longer witness a violation; an updated tuple's old
   edges are stale);
2. **re-derives** violations for inserted/updated tuples by binding one
   atom of each denial constraint to the delta tuple and evaluating the
   residual self-join through hash-index lookups on the equality
   conjuncts (the same join keys full detection hashes on);
3. **re-derives** the dangling chains of restricted foreign keys for the
   reference-graph components a delta (or a changed singleton denial
   edge) touches.

Denial violations are *local*: whether a set of tuples violates a
constraint depends only on those tuples, so edges between unchanged
tuples never need revisiting -- per-update cost is O(delta x matching
tuples) instead of O(database x constraints).  Foreign keys are the one
non-local constraint class (a parent insertion *cures* danglings), which
is why their components are re-derived rather than patched.

Minimization is maintained exactly: the maintainer keeps a *shadow
store* of every current raw violation (with the set of constraints
supporting it) and the hypergraph holds the minimal ones.  When an FK
edge is cured, previously-subsumed supersets resurface; when a smaller
violation appears, stored supersets are demoted back to the shadow.
The shadow is indexed by constraint label, and per-constraint
stored/found counters are maintained through every mutation path --
surfacing statistics costs O(constraints), not O(current violations).

Deltas arrive as :class:`~repro.engine.changelog.Change` batches (the
in-process engine's path) or as raw change-feed records via
:meth:`IncrementalDetector.apply_records` -- the consumer-side entry
point :mod:`repro.conflicts.replica` builds on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from repro.constraints.denial import DenialConstraint, to_denial_constraints
from repro.constraints.foreign_key import (
    ForeignKeyConstraint,
    topological_fk_order,
)
from repro.conflicts.detection import (
    DetectionReport,
    dangling_child_tids,
    ensure_edge_in_restricted_class,
)
from repro.conflicts.hypergraph import ConflictHypergraph, Vertex, vertex
from repro.engine.changelog import OP_INSERT, Change
from repro.engine.feed import RECORD_CHANGE, FeedRecord
from repro.engine.database import Database
from repro.engine.expressions import ExpressionCompiler, Scope
from repro.engine.storage import Table
from repro.sql import ast


@dataclass
class DeltaStats:
    """What one incremental application did (surfaced on the report)."""

    deltas: int = 0
    vertices: int = 0
    retracted: int = 0
    added: int = 0
    subsumed: int = 0
    resurrected: int = 0
    fk_components: int = 0
    seconds: float = 0.0
    per_constraint: dict[str, int] = field(default_factory=dict)
    per_constraint_subsumed: dict[str, int] = field(default_factory=dict)


class _DenialMatcher:
    """Evaluates one denial constraint's body around a bound tuple.

    Compiled once per constraint: the body's condition becomes a
    predicate over the concatenated atom rows, and its equality
    conjuncts between different atoms become join *links*.  To find the
    violations a new tuple participates in, the matcher binds one atom
    to that tuple and walks the remaining atoms, fetching candidates
    through hash-index lookups on the linked columns -- falling back to
    a scan only for atoms the condition leaves unlinked.

    The binding order depends only on *which* atoms are bound, never on
    their values, so it is planned **statically** here: one ordered
    step list per possible bound atom, each step naming the atom to
    extend with and the index columns that feed it.  The indexes those
    plans need are created eagerly at detector attach time
    (:meth:`ensure_indexes`) instead of lazily on the first delta, so
    the first post-bulk-load statement no longer absorbs an O(N) index
    build -- and, because they are ordinary storage hash indexes, the
    query planner's index-scan selection
    (``repro.engine.planner.Planner._try_index_scan``) picks the same
    indexes up for free.
    """

    def __init__(self, db: Database, constraint: DenialConstraint) -> None:
        self.constraint = constraint
        self.relations = [a.relation.lower() for a in constraint.atoms]
        self.tables: list[Table] = [
            db.catalog.table(a.relation) for a in constraint.atoms
        ]
        alias_to_atom = {
            a.alias.lower(): index for index, a in enumerate(constraint.atoms)
        }
        entries: list[tuple[Optional[str], str]] = []
        for atom, table in zip(constraint.atoms, self.tables):
            for column in table.schema.column_names:
                entries.append((atom.alias.lower(), column.lower()))
        self._predicate = None
        if constraint.condition is not None:
            self._predicate = ExpressionCompiler(
                Scope(entries)
            ).compile_predicate(constraint.condition)
        # Equality links: (atom_a, pos_a, atom_b, pos_b) for conjuncts of
        # the form ``a.col = b.col`` across two different atoms.
        self._links: list[tuple[int, int, int, int]] = []
        for conjunct in ast.split_conjuncts(constraint.condition):
            if not (
                isinstance(conjunct, ast.BinaryOp)
                and conjunct.op == "="
                and isinstance(conjunct.left, ast.ColumnRef)
                and isinstance(conjunct.right, ast.ColumnRef)
                and conjunct.left.table is not None
                and conjunct.right.table is not None
            ):
                continue
            left_atom = alias_to_atom.get(conjunct.left.table.lower())
            right_atom = alias_to_atom.get(conjunct.right.table.lower())
            if left_atom is None or right_atom is None or left_atom == right_atom:
                continue
            self._links.append(
                (
                    left_atom,
                    self.tables[left_atom].schema.index_of(conjunct.left.name),
                    right_atom,
                    self.tables[right_atom].schema.index_of(conjunct.right.name),
                )
            )
        # Static binding plans: for each possible bound atom, the order
        # in which the remaining atoms are extended and the key columns
        # (with their value sources) each extension reads.
        self._plans: list[list[tuple[int, Optional[dict[int, tuple[int, int]]]]]] = [
            self._plan(bound) for bound in range(len(self.tables))
        ]

    def _plan(
        self, bound_index: int
    ) -> list[tuple[int, Optional[dict[int, tuple[int, int]]]]]:
        """Greedy extension order starting from one bound atom.

        Each step is ``(atom, keys)`` where ``keys`` maps a column
        position on ``atom`` to the ``(source atom, source position)``
        whose value constrains it -- or None when the atom is unlinked
        from everything bound so far (scan fallback).  Mirrors the
        most-links-first choice the dynamic walk used to make per
        candidate, which depended only on the bound *set*, never on
        values.
        """
        bound = [atom == bound_index for atom in range(len(self.tables))]
        steps: list[tuple[int, Optional[dict[int, tuple[int, int]]]]] = []
        for _ in range(len(self.tables) - 1):
            best_atom, best_keys = -1, None
            for atom in range(len(self.tables)):
                if bound[atom]:
                    continue
                keys: dict[int, tuple[int, int]] = {}
                for atom_a, pos_a, atom_b, pos_b in self._links:
                    if atom_a == atom and bound[atom_b]:
                        keys.setdefault(pos_a, (atom_b, pos_b))
                    elif atom_b == atom and bound[atom_a]:
                        keys.setdefault(pos_b, (atom_a, pos_a))
                if best_atom < 0 or len(keys) > len(best_keys or {}):
                    best_atom, best_keys = atom, (keys or None)
            bound[best_atom] = True
            steps.append((best_atom, best_keys))
        return steps

    def index_plans(self) -> list[tuple[Table, tuple[int, ...]]]:
        """Every ``(table, column positions)`` index the plans can use."""
        plans: list[tuple[Table, tuple[int, ...]]] = []
        for steps in self._plans:
            for atom, keys in steps:
                if keys:
                    plans.append((self.tables[atom], tuple(sorted(keys))))
        return plans

    def ensure_indexes(self) -> None:
        """Create every index the binding plans will look up.

        Called at detector attach time, so index builds ride the (already
        O(N)) bootstrap instead of ambushing the first delta.
        """
        for table, positions in self.index_plans():
            if not table.has_index(positions):
                table.create_index(positions)

    def atom_positions(self, relation: str) -> list[int]:
        """Atom indexes whose relation matches (a delta can bind any)."""
        return [
            index for index, rel in enumerate(self.relations) if rel == relation
        ]

    def new_edges(
        self, bound_index: int, tid: int, row: tuple
    ) -> Iterator[frozenset[Vertex]]:
        """Violation sets containing ``(tid, row)`` at atom ``bound_index``."""
        assignment: list[Optional[tuple[int, tuple]]] = [None] * len(self.tables)
        assignment[bound_index] = (tid, row)
        yield from self._extend(assignment, self._plans[bound_index], 0)

    def _extend(
        self, assignment: list, plan: list, depth: int
    ) -> Iterator[frozenset[Vertex]]:
        if depth == len(plan):
            if self._predicate is not None:
                env_row = tuple(
                    value
                    for _tid, bound_row in assignment  # type: ignore[misc]
                    for value in bound_row
                )
                if not self._predicate((env_row,)):
                    return
            yield frozenset(
                vertex(relation, tid)
                for relation, (tid, _row) in zip(self.relations, assignment)
            )
            return
        atom, keys = plan[depth]
        table = self.tables[atom]
        if keys is None:
            candidates: Iterable[tuple[int, tuple]] = table.items()
        else:
            positions = tuple(sorted(keys))
            values = tuple(
                assignment[keys[position][0]][1][keys[position][1]]
                for position in positions
            )
            if any(value is None for value in values):
                return  # '=' with NULL matches nothing
            if not table.has_index(positions):
                table.create_index(positions)  # safety net; planned eagerly
            candidates = (
                (candidate_tid, table.get(candidate_tid))
                for candidate_tid in table.index_lookup(positions, values)
            )
        for candidate in candidates:
            assignment[atom] = candidate
            yield from self._extend(assignment, plan, depth + 1)
            assignment[atom] = None


class IncrementalDetector:
    """Maintains a conflict hypergraph under a stream of row deltas.

    Bootstrap from a full :func:`~repro.conflicts.detection.detect_conflicts`
    run (with ``keep_raw=True``), then feed batches of
    :class:`~repro.engine.changelog.Change` through :meth:`apply`.  The
    maintained :attr:`graph` is always equal to what full re-detection
    would produce on the current database state (the equivalence suite
    asserts exactly that).

    Raises (from :meth:`apply`):
        ConstraintError: when a delta pushes the database outside the
            restricted foreign-key class -- exactly when full
            re-detection on the new state would raise.
    """

    def __init__(
        self,
        db: Database,
        constraints: Iterable[object],
        extra_referenced: Iterable[str] = (),
    ) -> None:
        self.db = db
        constraint_list = list(constraints)
        self.foreign_keys = [
            c for c in constraint_list if isinstance(c, ForeignKeyConstraint)
        ]
        self.denials = to_denial_constraints(
            c for c in constraint_list if not isinstance(c, ForeignKeyConstraint)
        )
        self.fk_labels = frozenset(str(fk) for fk in self.foreign_keys)
        # ``extra_referenced``: FK-referenced relations owned by other
        # shard workers -- the restricted-class check must reject a
        # choice conflict on them exactly like the monolith does.
        self.referenced = frozenset(
            fk.referenced.lower() for fk in self.foreign_keys
        ) | frozenset(relation.lower() for relation in extra_referenced)
        self.constraint_names = [d.name for d in self.denials] + [
            str(fk) for fk in self.foreign_keys
        ]
        # relation -> denial constraints mentioning it (constraint order).
        self._by_relation: dict[str, list[DenialConstraint]] = {}
        for denial in self.denials:
            for relation in dict.fromkeys(
                a.relation.lower() for a in denial.atoms
            ):
                self._by_relation.setdefault(relation, []).append(denial)
        # Matchers (and the hash indexes their binding plans read) are
        # planned eagerly from the constraint set at attach time: the
        # detector is only ever constructed next to an O(N) full
        # detection, so the index builds ride the bootstrap instead of
        # ambushing the first post-bulk-load delta.  The indexes are
        # ordinary storage indexes, so the query planner's index-scan
        # selection shares them.
        self._matchers: dict[str, _DenialMatcher] = {}
        for denial in self.denials:
            matcher = _DenialMatcher(db, denial)
            matcher.ensure_indexes()
            self._matchers[denial.name] = matcher
        self._build_fk_components()
        # Shadow store: every *current* raw violation, minimal or not.
        # edge -> (primary label, set of supporting constraint labels).
        self._shadow: dict[frozenset[Vertex], tuple[str, set[str]]] = {}
        self._shadow_incidence: dict[Vertex, set[frozenset[Vertex]]] = {}
        # Label index over the shadow: constraint -> the edges it
        # supports (insertion-ordered).  ``len`` of an entry is the
        # constraint's *found* count, so per-constraint counters fall out
        # of the index instead of an O(current violations) recount.
        self._shadow_by_label: dict[str, dict[frozenset[Vertex], None]] = {}
        # Stored (post-minimization) edge count per primary label,
        # maintained through _graph_add/_graph_remove.
        self._stored: dict[str, int] = {}
        self.graph: Optional[ConflictHypergraph] = None

    # ----------------------------------------------------------- bootstrap

    def bootstrap(self, report: DetectionReport) -> None:
        """Adopt a full-detection result as the maintained state.

        ``report`` must carry the raw violation stream
        (``detect_conflicts(..., keep_raw=True)``).
        """
        if report.raw_edges is None or report.raw_labels is None:
            raise ValueError("bootstrap needs a report with keep_raw=True")
        self.graph = report.hypergraph
        self._shadow.clear()
        self._shadow_incidence.clear()
        self._shadow_by_label.clear()
        for edge, label in zip(report.raw_edges, report.raw_labels):
            entry = self._shadow.get(edge)
            if entry is None:
                self._shadow[edge] = (label, {label})
                for v in edge:
                    self._shadow_incidence.setdefault(v, set()).add(edge)
            else:
                entry[1].add(label)
            self._shadow_by_label.setdefault(label, {})[edge] = None
        self._stored = {name: 0 for name in self.constraint_names}
        for label in self.graph.edge_labels:
            self._stored[label] = self._stored.get(label, 0) + 1

    # --------------------------------------------------------------- apply

    def apply_records(self, records: Sequence[FeedRecord]) -> DeltaStats:
        """Fold a batch of change-feed records into the hypergraph.

        This is the consumer-side entry point: records come straight
        from :meth:`~repro.engine.feed.FeedConsumer.poll`.  The caller
        is responsible for schema records (DDL means full re-detection,
        not delta maintenance) -- they are rejected here.

        Raises:
            ValueError: when a non-change record is in the batch.
        """
        # Validate in one pass, then convert in a comprehension: the
        # conversion is the per-record hot loop of every replica sync.
        for record in records:
            if record.kind != RECORD_CHANGE:
                raise ValueError(
                    f"cannot apply {record.kind!r} record incrementally"
                )
        return self.apply(
            [
                Change(record.topic, record.tid, record.row, record.op)
                for record in records
            ]
        )

    def apply(self, changes: Sequence[Change]) -> DeltaStats:
        """Fold a batch of deltas into the maintained hypergraph."""
        assert self.graph is not None, "bootstrap before apply"
        started = time.perf_counter()
        stats = DeltaStats(deltas=len(changes))

        # Net effect per tuple: only the last change matters (an UPDATE
        # arrives as delete + insert under the same tid, so its final
        # state is the inserted row; tids are never reused).
        last: dict[Vertex, Change] = {}
        for change in changes:
            # Feed topics are lower-cased at publish time (storage lowers
            # schema names), and this is the per-delta hot path.
            # hippolint: disable-next-line=HL005 -- topic already lower-case
            last[Vertex(change.relation, change.tid)] = change
        stats.vertices = len(last)

        # 1) Retract everything incident to a changed tuple.  This keeps
        # the shadow invariant without any resurrection logic: a shadow
        # superset of a retracted edge shares the changed vertex, so it
        # is retracted too.
        for v in last:
            for edge in list(self._shadow_incidence.get(v, ())):
                self._shadow_remove(edge)
                if self._graph_remove(edge):
                    stats.retracted += 1

        # 2) Re-derive denial violations around inserted/updated tuples.
        for v, change in last.items():
            if change.op != OP_INSERT:
                continue
            for constraint in self._by_relation.get(v.relation, ()):
                matcher = self._matcher(constraint)
                for bound_index in matcher.atom_positions(v.relation):
                    for edge in matcher.new_edges(
                        bound_index, v.tid, change.row
                    ):
                        self._check_restricted(edge)
                        outcome = self._add_raw(edge, constraint.name)
                        if outcome == "added":
                            stats.added += 1
                        elif outcome == "subsumed":
                            stats.subsumed += 1

        # 3) Re-derive the dangling chains of affected FK components.
        # Singleton denial edges feed the chains, but a singleton can
        # only appear or vanish together with its (changed) vertex, so
        # the touched relations already cover every trigger.
        touched = {v.relation for v in last}
        affected = sorted(
            {
                self._component_of[relation]
                for relation in touched
                if relation in self._component_of
            }
        )
        stats.fk_components = len(affected)
        for component in affected:
            self._rederive_component(component, stats)

        self._counters(stats)
        stats.seconds = time.perf_counter() - started
        return stats

    # ------------------------------------------------------------ plumbing

    def _matcher(self, constraint: DenialConstraint) -> _DenialMatcher:
        matcher = self._matchers.get(constraint.name)
        if matcher is None:
            matcher = _DenialMatcher(self.db, constraint)
            self._matchers[constraint.name] = matcher
        return matcher

    def _check_restricted(self, edge: frozenset[Vertex]) -> None:
        """The same restricted-FK class check full detection performs."""
        if self.referenced:
            ensure_edge_in_restricted_class(edge, self.referenced)

    def _graph_add(self, edge: frozenset[Vertex], label: str) -> bool:
        """``graph.add_edge`` maintaining the per-label stored counters."""
        assert self.graph is not None
        if self.graph.add_edge(edge, label):
            self._stored[label] = self._stored.get(label, 0) + 1
            return True
        return False

    def _graph_remove(self, edge: frozenset[Vertex]) -> bool:
        """``graph.remove_edge`` maintaining the per-label stored counters."""
        assert self.graph is not None
        if not self.graph.contains_edge(edge):
            return False
        self._stored[self.graph.label_of(edge)] -= 1
        self.graph.remove_edge(edge)
        return True

    def _graph_relabel(self, edge: frozenset[Vertex], label: str) -> None:
        """Swap a stored edge's primary label, keeping counters exact."""
        if self._graph_remove(edge):
            self._graph_add(edge, label)

    def _shadow_remove(self, edge: frozenset[Vertex]) -> tuple[str, set[str]]:
        entry = self._shadow.pop(edge)
        for v in edge:
            owners = self._shadow_incidence.get(v)
            if owners is not None:
                owners.discard(edge)
                if not owners:
                    del self._shadow_incidence[v]
        for label in entry[1]:
            supported = self._shadow_by_label.get(label)
            if supported is not None:
                supported.pop(edge, None)
        return entry

    def _add_raw(self, edge: frozenset[Vertex], label: str) -> str:
        """Record a raw violation; maintain the minimal stored view.

        Returns ``"added"`` (now stored), ``"subsumed"`` (a smaller
        stored edge absorbs it), ``"duplicate"`` (another constraint
        already derived it) or ``"known"`` (nothing new).
        """
        assert self.graph is not None
        entry = self._shadow.get(edge)
        if entry is not None:
            primary, supports = entry
            if label in supports:
                return "known"
            supports.add(label)
            self._shadow_by_label.setdefault(label, {})[edge] = None
            # Full detection derives denial edges before FK danglings, so
            # a denial support always outranks an FK primary.
            if primary in self.fk_labels and label not in self.fk_labels:
                self._shadow[edge] = (label, supports)
                self._graph_relabel(edge, label)
            return "duplicate"
        self._shadow[edge] = (label, {label})
        for v in edge:
            self._shadow_incidence.setdefault(v, set()).add(edge)
        self._shadow_by_label.setdefault(label, {})[edge] = None
        if self.graph.subset_edges(edge):
            return "subsumed"
        for superset in self.graph.superset_edges(edge):
            # Demoted back to the shadow; resurfaces if ``edge`` is cured.
            self._graph_remove(superset)
        self._graph_add(edge, label)
        return "added"

    def _retract_support(
        self, edge: frozenset[Vertex], labels: frozenset[str], stats: DeltaStats
    ) -> None:
        """Withdraw some constraints' support for an edge (FK re-derivation)."""
        assert self.graph is not None
        primary, supports = self._shadow[edge]
        withdrawn = supports & labels
        supports -= labels
        for label in withdrawn:
            supported = self._shadow_by_label.get(label)
            if supported is not None:
                supported.pop(edge, None)
        if supports:
            if primary in labels:
                # Keep a deterministic primary: the first remaining
                # supporter in constraint order (matches full detection).
                for name in self.constraint_names:
                    if name in supports:
                        self._shadow[edge] = (name, supports)
                        self._graph_relabel(edge, name)
                        break
            return
        self._shadow_remove(edge)
        if self._graph_remove(edge):
            stats.retracted += 1
            stats.resurrected += self._resurrect(edge)

    def _resurrect(self, removed: frozenset[Vertex]) -> int:
        """Promote shadow supersets of a cured edge back into the view.

        Only needed when an edge disappears while its vertices survive
        (an FK dangling cured by a parent insertion): supersets it was
        subsuming may now be minimal.
        """
        assert self.graph is not None
        probe = next(iter(removed))
        candidates = sorted(
            (
                edge
                for edge in self._shadow_incidence.get(probe, ())
                if removed < edge
            ),
            key=len,
        )
        count = 0
        for edge in candidates:
            if self.graph.contains_edge(edge):
                continue
            if self.graph.subset_edges(edge):
                continue  # still subsumed by another stored edge
            self._graph_add(edge, self._shadow[edge][0])
            count += 1
        return count

    # ------------------------------------------------------- foreign keys

    def _build_fk_components(self) -> None:
        """Weakly-connected components of the FK reference graph."""
        self._fk_order = topological_fk_order(self.foreign_keys)
        parent: dict[str, str] = {}

        def find(relation: str) -> str:
            root = relation
            while parent.setdefault(root, root) != root:
                root = parent[root]
            parent[relation] = root
            return root

        for fk in self.foreign_keys:
            left = find(fk.referencing.lower())
            right = find(fk.referenced.lower())
            if left != right:
                parent[left] = right
        roots = sorted({find(relation) for relation in parent})
        component_ids = {root: index for index, root in enumerate(roots)}
        self._component_of = {
            relation: component_ids[find(relation)] for relation in parent
        }
        self._component_fks: dict[int, list[ForeignKeyConstraint]] = {}
        self._component_labels: dict[int, frozenset[str]] = {}
        for fk in self._fk_order:  # keep topological order per component
            component = self._component_of[fk.referencing.lower()]
            self._component_fks.setdefault(component, []).append(fk)
        for component, fks in self._component_fks.items():
            self._component_labels[component] = frozenset(
                str(fk) for fk in fks
            )

    def _rederive_component(self, component: int, stats: DeltaStats) -> None:
        """Retract and recompute one FK component's dangling chain."""
        assert self.graph is not None
        labels = self._component_labels[component]
        # The label index makes the stale set direct: only edges some
        # component FK actually supports, not a scan of the whole shadow.
        stale: dict[frozenset[Vertex], None] = {}
        for fk in self._component_fks[component]:
            for edge in self._shadow_by_label.get(str(fk), {}):
                stale.setdefault(edge, None)
        for edge in list(stale):
            self._retract_support(edge, labels, stats)

        # Deterministic deletions feeding the chain: singleton denial
        # edges (any relation; the chain only reads its own parents).
        deleted: dict[str, set[int]] = {}
        for edge, label in zip(self.graph.edges, self.graph.edge_labels):
            if len(edge) == 1 and label not in self.fk_labels:
                (v,) = edge
                deleted.setdefault(v.relation, set()).add(v.tid)

        for fk in self._component_fks[component]:
            label = str(fk)
            child_key = fk.referencing.lower()
            for tid in dangling_child_tids(self.db, fk, deleted):
                outcome = self._add_raw(
                    frozenset({vertex(child_key, tid)}), label
                )
                if outcome == "added":
                    stats.added += 1
                elif outcome == "subsumed":
                    stats.subsumed += 1

    # ------------------------------------------------------------ counters

    def _counters(self, stats: DeltaStats) -> None:
        """Surface the maintained per-constraint counters on the stats.

        ``stored`` is kept exact by :meth:`_graph_add` /
        :meth:`_graph_remove`; ``found`` is the size of each label's
        shadow index entry -- so this is O(constraints) per apply, not
        O(current violations) as the recounting pass it replaced was.
        """
        stats.per_constraint = {
            name: self._stored.get(name, 0) for name in self.constraint_names
        }
        stats.per_constraint_subsumed = {
            name: len(self._shadow_by_label.get(name, {}))
            - self._stored.get(name, 0)
            for name in self.constraint_names
        }
