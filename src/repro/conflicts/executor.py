"""Multi-process shard execution with live topic rebalancing.

:class:`~repro.conflicts.shard.ShardCoordinator` proved the sharded
hypergraph correct in-process; this module runs the same workers as
real OS processes.  Each :class:`~repro.conflicts.shard.ShardWorker`
lives in its own ``multiprocessing`` process (spawn-safe: workers
attach to the durable feed *by directory path* and rebuild everything
from disk), and talks to the coordinating
:class:`ProcessShardExecutor` over a small control-message protocol:

* **Heartbeats** -- each worker periodically sends its status (lag,
  edge count, committed offsets, pid) over its pipe; the parent drains
  them opportunistically while waiting for replies.
* **Requests** -- ``status`` / ``drain`` / ``sync`` / ``checkpoint`` /
  ``export`` / ``reshape`` / ``graph`` / ``stop``, matched to replies
  by request id.  ``reshape`` carries the pickled
  :class:`~repro.conflicts.shard.ShardSpec` /
  :class:`~repro.conflicts.shard.ShardPlan`, so ownership grants ride
  the same channel.

**Ownership.**  The executor persists the topic -> worker assignment
in ``shards.json`` inside the feed directory (atomic write, fsync
before rename).  The persisted map -- not the constructor arguments --
is authoritative on re-attach, and bumping it is the *commit point* of
the five-step handoff protocol (see
:meth:`~repro.conflicts.shard.ShardCoordinator.handoff`; the executor
drives the same steps over the control channel).  A worker's own
durable half is its consumer-group registration: resubscribing pins
the adopted topic at the handoff cut, so retention floors follow
ownership automatically.

**Supervision.**  :meth:`ProcessShardExecutor.supervise` detects dead
workers (exit code) and hung ones (no heartbeat within the timeout),
SIGKILLs the hung, and respawns both kinds.  A respawned worker
bootstraps ``bootstrap="snapshot"`` -- its group snapshot plus the
retained suffix, cost proportional to what it missed -- then
*reconciles*: it re-attaches under the subscription its group actually
has on disk (a crash mid-handoff leaves the registration ahead of or
behind the plan) and reshapes to the plan's spec, adopting any pending
transfer packets.  Every crash point of the handoff protocol therefore
converges to the planned state after one supervision pass.

**Rebalancing.**  :meth:`ProcessShardExecutor.rebalance` feeds live
per-worker status into the pure
:func:`~repro.conflicts.shard.choose_move` chooser (owned-topic lag
plus hypergraph edge counts) and executes the chosen move as a live
handoff.  The CLI's ``.rebalance`` runs the same chooser as a dry-run
advisor against the persisted state.

**Chaos.**  A :class:`ChaosPlan` arms a worker process to SIGKILL
*itself* at a named pipeline phase (``apply`` after records hit the
database but before the offset commit, ``checkpoint`` just before the
snapshot store, ``release`` / ``adopt`` inside the handoff) -- the
fault-injection seam ``tests/chaos/`` drives.  Parent-side kill points
(before/after the ownership commit) use :meth:`ProcessShardExecutor.kill`
from a handoff ``on_step`` callback instead.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field, replace
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from pathlib import Path
from typing import Callable, Dict, Iterable, Optional

from repro.conflicts.hypergraph import ConflictHypergraph
from repro.conflicts.shard import (
    RebalanceMove,
    ShardPlan,
    ShardReshape,
    ShardSpec,
    ShardWorker,
    choose_move,
    merge_graphs,
    plan_assignment,
)
from repro.engine.feed import SCHEMA_TOPIC, ChangeFeed
from repro.errors import ExecutorError, FeedError

#: The ownership manifest inside the feed directory.
OWNERSHIP_FILE = "shards.json"


@dataclass(frozen=True)
class ChaosPlan:
    """Fault-injection arming for one worker process.

    The worker SIGKILLs *itself* when the pipeline reaches the armed
    phase -- a real mid-syscall death, not an exception -- so the
    recovery paths the chaos suite pins are the ones production would
    take.

    Attributes:
        phase: the crash-seam name (``"apply"``, ``"checkpoint"``,
            ``"release"``, ``"adopt"`` -- see
            :meth:`repro.conflicts.replica.ReplicaHypergraph._mark`).
        topic: only match when the phase concerns this topic (None =
            any; ``apply``/``checkpoint`` phases carry no topic and
            only match a plan without one).
        after: skip this many matching hits first -- kill the Nth
            checkpoint, not the first.
    """

    phase: str
    topic: Optional[str] = None
    after: int = 0


@dataclass(frozen=True)
class WorkerEvent:
    """One supervision action: why a worker was respawned."""

    index: int
    reason: str
    respawns: int


@dataclass(frozen=True)
class WorkerStatus:
    """One worker's row in :meth:`ProcessShardExecutor.status`.

    A dead worker (process exited, or request failed) is reported with
    ``alive=False`` and its lag computed from its group's *registered*
    offsets against the feed end -- lagging, never silently absent.
    """

    index: int
    group: str
    pid: Optional[int]
    alive: bool
    ready: bool
    lag: int
    edges: int
    committed: dict[str, int]
    owned: tuple[str, ...]
    restore_mode: str
    applied_records: dict[str, int]
    respawns: int
    exitcode: Optional[int]


@dataclass(frozen=True)
class HandoffReport:
    """What one :meth:`ProcessShardExecutor.handoff` did: the new plan
    plus each reshaped worker's :class:`ShardReshape` (the adopting
    entries carry the resume cuts for the no-re-bootstrap assertion)."""

    plan: ShardPlan
    reshapes: Dict[int, ShardReshape]


@dataclass(frozen=True)
class Ownership:
    """The persisted topic -> worker assignment (``shards.json``)."""

    workers: int
    owner: dict[str, int]
    epoch: int


def _atomic_json(path: Path, payload: dict) -> None:
    temp = path.with_suffix(path.suffix + ".tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"), allow_nan=False)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


def load_ownership(directory: str | os.PathLike) -> Optional[Ownership]:
    """The persisted ownership manifest under ``directory``, or None
    when no executor ever ran there.

    Raises:
        ExecutorError: when the manifest is corrupt.
    """
    path = Path(directory) / OWNERSHIP_FILE
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        return Ownership(
            workers=int(data["workers"]),
            owner={str(k): int(v) for k, v in data["owner"].items()},
            epoch=int(data.get("epoch", 0)),
        )
    except (ValueError, KeyError) as exc:
        raise ExecutorError(f"corrupt ownership manifest {path}") from exc


def store_ownership(directory: str | os.PathLike, ownership: Ownership) -> None:
    """Atomically persist the ownership manifest (fsync before rename:
    the grant must never be half-visible to a re-attaching executor)."""
    _atomic_json(
        Path(directory) / OWNERSHIP_FILE,
        {
            "workers": ownership.workers,
            "owner": dict(sorted(ownership.owner.items())),
            "epoch": ownership.epoch,
        },
    )


# --------------------------------------------------------------- worker side


class _ProcessWorker(ShardWorker):
    """A shard worker whose crash seam is wired to the chaos plan."""

    chaos: Optional[ChaosPlan] = None
    chaos_hits: int = 0

    def _mark(self, phase: str, topic: Optional[str] = None) -> None:
        plan = self.chaos
        if plan is None or plan.phase != phase:
            return
        if plan.topic is not None and plan.topic != topic:
            return
        self.chaos_hits += 1
        if self.chaos_hits > plan.after:
            os.kill(os.getpid(), signal.SIGKILL)


def _status_payload(worker: ShardWorker) -> dict:
    return {
        "group": worker.group,
        "pid": os.getpid(),
        "ready": worker.ready,
        "lag": worker.lag,
        "edges": len(worker.graph.edges) if worker.ready else 0,
        "committed": worker.committed,
        "owned": list(worker.spec.owned),
        "subscribed": sorted(worker.topics or ()),
        "restore_mode": worker.restore_mode,
        "restore_records": worker.restore_records,
        "applied_records": dict(worker.applied_records),
    }


def _construct(
    feed: ChangeFeed,
    spec: ShardSpec,
    plan: ShardPlan,
    group: str,
    options: dict,
    chaos: Optional[ChaosPlan],
) -> ShardWorker:
    worker = _ProcessWorker(
        feed,
        spec,
        plan,
        group=group,
        snapshots=True,
        checkpoint_records=options.get("checkpoint_records"),
        bootstrap="snapshot",
    )
    worker.chaos = chaos
    worker.chaos_hits = 0
    return worker


def _attach_worker(
    feed: ChangeFeed,
    spec: ShardSpec,
    plan: ShardPlan,
    group: str,
    options: dict,
) -> ShardWorker:
    """Attach (or re-attach) the shard worker, reconciling a respawn.

    The worker bootstraps under the subscription its group actually has
    *on disk* -- a crash mid-handoff leaves the registration ahead of
    or behind the plan -- and then reshapes to the target spec,
    adopting pending transfer packets.  A registered topic that can
    neither replay (history reclaimed) nor restore from the group
    snapshot (the worker died between resubscribing and its first
    checkpoint) is dropped from the registration and re-adopted from
    its still-pending packet, which has pinned the suffix all along.
    """
    chaos = options.get("chaos")
    target = frozenset(
        {str(t).lower() for t in spec.subscribed} | {SCHEMA_TOPIC}
    )
    point = feed.recovery_points().get(group)
    boot_topics = target
    if point is not None and point.topics is not None:
        boot_topics = frozenset(point.topics) | {SCHEMA_TOPIC}
    boot_spec = replace(spec, subscribed=tuple(sorted(boot_topics)))
    try:
        worker = _construct(feed, boot_spec, plan, group, options, chaos)
    except FeedError:
        pending = set(feed.transfers())
        reduced = frozenset(
            name for name in boot_topics if name not in pending
        )
        if reduced == boot_topics:
            raise  # nothing in flight explains the failure
        feed.update_subscription(group, reduced)
        boot_spec = replace(spec, subscribed=tuple(sorted(reduced)))
        worker = _construct(feed, boot_spec, plan, group, options, chaos)
    if frozenset(worker.topics or ()) != target:
        worker.reshape(spec, plan)
    elif options.get("checkpoint_on_attach"):
        # A respawn that needed no reshape still re-establishes its
        # floor: the fresh checkpoint covers topics adopted by a
        # crashed handoff, letting the supervisor sweep their packets.
        worker.spec = spec
        worker.constraints = list(spec.constraints)
        worker.checkpoint()
    else:
        worker.spec = spec
        worker.constraints = list(spec.constraints)
    return worker


def _handle(worker: ShardWorker, conn: Connection, message: dict) -> bool:
    """Serve one control message; returns False on ``stop``."""
    op = message.get("op")
    ident = message.get("id")
    try:
        value: object = None
        if op == "stop":
            worker.close()
            conn.send({"kind": "reply", "id": ident, "ok": True, "value": None})
            return False
        if op == "status":
            value = _status_payload(worker)
        elif op == "sync":
            sync = worker.sync(message.get("limit"))
            value = {"records": sync.records, "lag": sync.lag, "mode": sync.mode}
        elif op == "drain":
            while worker.lag:
                worker.sync()
            value = _status_payload(worker)
        elif op == "checkpoint":
            worker.checkpoint()
            value = worker.committed
        elif op == "export":
            value = worker.export_topic(str(message["topic"]))
        elif op == "reshape":
            value = worker.reshape(message["spec"], message["plan"])
        elif op == "graph":
            value = worker.graph if worker.ready else None
        else:
            raise ExecutorError(f"unknown control op {op!r}")
        conn.send({"kind": "reply", "id": ident, "ok": True, "value": value})
    except Exception as exc:
        conn.send(
            {
                "kind": "reply",
                "id": ident,
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }
        )
    return True


def _serve(worker: ShardWorker, conn: Connection, options: dict) -> None:
    """The worker loop: control messages, bounded syncs, heartbeats."""
    interval = float(options.get("heartbeat_interval", 0.25))
    limit = options.get("sync_limit", 512)
    last_beat = 0.0
    while True:
        while conn.poll(0):
            if not _handle(worker, conn, conn.recv()):
                return
        sync = worker.sync(limit)
        now = time.monotonic()
        if sync.records or now - last_beat >= interval:
            conn.send({"kind": "heartbeat", "status": _status_payload(worker)})
            last_beat = now
        if not sync.records and sync.lag == 0:
            # Idle: block on the control channel instead of spinning.
            conn.poll(interval)


def _worker_main(
    directory: str,
    spec: ShardSpec,
    plan: ShardPlan,
    group: str,
    conn: Connection,
    options: dict,
) -> None:
    """Entry point of one shard worker process (spawn-safe: everything
    it needs arrives as arguments; state rebuilds from the feed
    directory)."""
    feed = ChangeFeed(directory)
    try:
        worker = _attach_worker(feed, spec, plan, group, options)
        conn.send({"kind": "heartbeat", "status": _status_payload(worker)})
        _serve(worker, conn, options)
    except (EOFError, BrokenPipeError):
        return  # the parent went away; nothing to report to
    except Exception as exc:
        with contextlib.suppress(OSError, ValueError):
            conn.send(
                {"kind": "fatal", "error": f"{type(exc).__name__}: {exc}"}
            )
        raise SystemExit(1) from exc
    finally:
        feed.close()


# --------------------------------------------------------------- parent side


@dataclass
class _WorkerHandle:
    index: int
    group: str
    process: BaseProcess
    conn: Connection
    last_beat: float
    last_status: dict = field(default_factory=dict)
    respawns: int = 0


class ProcessShardExecutor:
    """Run each shard worker in its own OS process, with supervision,
    live topic handoff and lag-driven rebalancing.

    Args:
        directory: the durable feed directory; workers attach to it by
            path with their own reader instances.
        constraints: the full constraint set.
        workers: worker-process count.  Ignored when ``shards.json``
            already exists in the directory -- the persisted ownership
            (and its worker count) is authoritative on re-attach.
        relations / assignment: initial plan inputs (see
            :func:`~repro.conflicts.shard.plan_assignment`); ignored on
            re-attach for the same reason.
        group_prefix: consumer groups are named ``{prefix}-{index}``.
        mp_context: ``"spawn"`` (default; the production shape) or
            ``"fork"`` (cheap starts for respawn-heavy test schedules).
        heartbeat_interval: worker status cadence, seconds.
        heartbeat_timeout: a live process silent this long is declared
            hung, SIGKILLed and respawned by :meth:`supervise`.
        sync_limit: records per bounded worker sync.
        checkpoint_records: auto-checkpoint cadence per worker.
        request_timeout: parent-side deadline per control request
            (covers bootstrap: the first request blocks until the
            worker finishes attaching).
        chaos: ``{worker index: ChaosPlan}`` armed at first spawn only
            (respawns come up clean, so a kill schedule terminates).

    The constructor blocks until every worker answered its first
    status request -- i.e. finished bootstrapping -- then sweeps any
    transfer packets a crashed previous run left behind.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        constraints: Iterable[object],
        workers: int = 2,
        relations: Iterable[str] = (),
        assignment: Optional[Dict[str, int]] = None,
        group_prefix: str = "shard",
        mp_context: str = "spawn",
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float = 10.0,
        sync_limit: int = 512,
        checkpoint_records: Optional[int] = None,
        request_timeout: float = 60.0,
        chaos: Optional[Dict[int, ChaosPlan]] = None,
    ) -> None:
        self.directory = Path(directory)
        self.constraints = list(constraints)
        self.group_prefix = group_prefix
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.sync_limit = sync_limit
        self.checkpoint_records = checkpoint_records
        self.request_timeout = request_timeout
        self.chaos = dict(chaos or {})
        self._ctx = multiprocessing.get_context(mp_context)
        self._next_request = 0
        self._handles: dict[int, _WorkerHandle] = {}
        self._closed = False
        self.feed = ChangeFeed(self.directory)
        try:
            ownership = load_ownership(self.directory)
            if ownership is not None:
                self.workers = ownership.workers
                self._assignment = dict(ownership.owner)
                self.epoch = ownership.epoch
            else:
                self.feed.refresh()
                discovered = [
                    t.name
                    for t in self.feed.topics()
                    if t.name != SCHEMA_TOPIC
                ]
                seeded = plan_assignment(
                    self.constraints,
                    workers,
                    relations=[*discovered, *relations],
                    assignment=assignment,
                )
                self.workers = workers
                self._assignment = dict(seeded.topic_owner)
                self.epoch = 0
                self._store_ownership()
            self.plan = self._replan()
            for spec in self.plan.shards:
                self._spawn(spec.index)
            self.status()  # block until every worker bootstrapped
            self.sweep_transfers()
        except BaseException:
            self.close()
            raise

    # ----------------------------------------------------------- lifecycle

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Stop every worker (each checkpoints and detaches) and close
        the parent's feed handle.  Workers that refuse to stop within
        the request timeout are killed."""
        if self._closed:
            return
        self._closed = True
        for index in sorted(self._handles):
            handle = self._handles[index]
            if handle.process.is_alive():
                try:
                    self._request(handle, "stop")
                except ExecutorError:
                    handle.process.kill()
            handle.process.join(5)
            handle.conn.close()
        self._handles.clear()
        self.feed.close()

    # ------------------------------------------------------------ plumbing

    def _store_ownership(self) -> None:
        store_ownership(
            self.directory,
            Ownership(
                workers=self.workers,
                owner=self._assignment,
                epoch=self.epoch,
            ),
        )

    def _replan(self) -> ShardPlan:
        """The current plan from the persisted assignment, newly
        discovered topics assigned and persisted."""
        self.feed.refresh()
        discovered = [
            t.name for t in self.feed.topics() if t.name != SCHEMA_TOPIC
        ]
        plan = plan_assignment(
            self.constraints,
            self.workers,
            relations=discovered,
            assignment=self._assignment,
        )
        if plan.topic_owner != self._assignment:
            self._assignment = dict(plan.topic_owner)
            self._store_ownership()
        return plan

    def _spawn(
        self,
        index: int,
        chaos_armed: bool = True,
        checkpoint_on_attach: bool = False,
    ) -> _WorkerHandle:
        spec = self.plan.shards[index]
        group = f"{self.group_prefix}-{index}"
        parent_conn, child_conn = self._ctx.Pipe()
        options = {
            "heartbeat_interval": self.heartbeat_interval,
            "sync_limit": self.sync_limit,
            "checkpoint_records": self.checkpoint_records,
            "chaos": self.chaos.get(index) if chaos_armed else None,
            "checkpoint_on_attach": checkpoint_on_attach,
        }
        process = self._ctx.Process(
            target=_worker_main,
            args=(str(self.directory), spec, self.plan, group, child_conn,
                  options),
            name=group,
            daemon=True,
        )
        process.start()
        child_conn.close()
        previous = self._handles.get(index)
        handle = _WorkerHandle(
            index=index,
            group=group,
            process=process,
            conn=parent_conn,
            last_beat=time.monotonic(),
            respawns=previous.respawns if previous is not None else 0,
        )
        self._handles[index] = handle
        return handle

    def _request(
        self,
        handle: _WorkerHandle,
        op: str,
        timeout: Optional[float] = None,
        **payload: object,
    ) -> object:
        """Send one control request and wait for its reply, draining
        heartbeats (and stale replies of timed-out requests) on the
        way.

        Raises:
            ExecutorError: when the worker is dead, dies mid-request,
                reports a failure, or the deadline passes.
        """
        ident = self._next_request
        self._next_request += 1
        try:
            handle.conn.send({"id": ident, "op": op, **payload})
        except (BrokenPipeError, OSError) as exc:
            raise ExecutorError(
                f"worker {handle.index} is dead (cannot send {op!r})"
            ) from exc
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.request_timeout
        )
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ExecutorError(
                    f"worker {handle.index} timed out on {op!r}"
                )
            try:
                ready = handle.conn.poll(min(remaining, 0.1))
                message = handle.conn.recv() if ready else None
            except (EOFError, OSError) as exc:
                raise ExecutorError(
                    f"worker {handle.index} died during {op!r}"
                    f" (exit {handle.process.exitcode})"
                ) from exc
            if message is None:
                if not handle.process.is_alive():
                    raise ExecutorError(
                        f"worker {handle.index} died during {op!r}"
                        f" (exit {handle.process.exitcode})"
                    )
                continue
            kind = message.get("kind")
            if kind == "heartbeat":
                handle.last_beat = time.monotonic()
                handle.last_status = message.get("status", {})
                continue
            if kind == "fatal":
                raise ExecutorError(
                    f"worker {handle.index} failed: {message.get('error')}"
                )
            if kind == "reply" and message.get("id") == ident:
                if not message.get("ok"):
                    raise ExecutorError(
                        f"worker {handle.index} {op!r} failed:"
                        f" {message.get('error')}"
                    )
                return message.get("value")
            # A stale reply for an earlier timed-out request: drop it.

    def _drain_messages(self, handle: _WorkerHandle) -> bool:
        """Non-blocking heartbeat drain (the supervisor's read path).
        Returns False when the pipe hit EOF -- the worker is gone even
        if the kernel has not reaped the process yet."""
        while True:
            try:
                if not handle.conn.poll(0):
                    return True
                message = handle.conn.recv()
            except (EOFError, OSError):
                return False
            if message.get("kind") == "heartbeat":
                handle.last_beat = time.monotonic()
                handle.last_status = message.get("status", {})

    def _dead_status(self, handle: _WorkerHandle) -> WorkerStatus:
        """Status for a dead worker from its group's *registered* state
        -- it must show up lagging, never silently absent."""
        self.feed.refresh()
        ends = self.feed.end_offsets()
        point = self.feed.recovery_points().get(handle.group)
        committed = dict(point.committed) if point is not None else {}
        topics = point.topics if point is not None else None
        lag = sum(
            max(end - committed.get(name, 0), 0)
            for name, end in ends.items()
            if topics is None or name in topics
        )
        last = handle.last_status
        return WorkerStatus(
            index=handle.index,
            group=handle.group,
            pid=handle.process.pid,
            alive=False,
            ready=False,
            lag=lag,
            edges=int(last.get("edges", 0)),
            committed=committed,
            owned=tuple(self.plan.shards[handle.index].owned),
            restore_mode=str(last.get("restore_mode", "replay")),
            applied_records=dict(last.get("applied_records", {})),
            respawns=handle.respawns,
            exitcode=handle.process.exitcode,
        )

    # -------------------------------------------------------------- status

    def status(self) -> list[WorkerStatus]:
        """Live per-worker status over the control channel; dead
        workers are reported lagging from their registered offsets."""
        rows: list[WorkerStatus] = []
        for index in sorted(self._handles):
            handle = self._handles[index]
            try:
                payload = self._request(handle, "status")
            except ExecutorError:
                rows.append(self._dead_status(handle))
                continue
            assert isinstance(payload, dict)
            rows.append(
                WorkerStatus(
                    index=index,
                    group=handle.group,
                    pid=int(payload["pid"]),
                    alive=True,
                    ready=bool(payload["ready"]),
                    lag=int(payload["lag"]),
                    edges=int(payload["edges"]),
                    committed=dict(payload["committed"]),
                    owned=tuple(payload["owned"]),
                    restore_mode=str(payload["restore_mode"]),
                    applied_records=dict(payload["applied_records"]),
                    respawns=handle.respawns,
                    exitcode=None,
                )
            )
        return rows

    @property
    def lag(self) -> int:
        """Pending records across all workers (dead ones included)."""
        return sum(row.lag for row in self.status())

    def drain(self, timeout: Optional[float] = None) -> list[WorkerStatus]:
        """Ask every worker to sync until its lag is zero.  With a
        quiescent, flushed writer the workers then sit at an aligned
        cut.  Returns their statuses at the cut.

        Raises:
            ExecutorError: when a worker is dead or hangs past the
                timeout -- run :meth:`supervise` and retry.
        """
        rows: list[WorkerStatus] = []
        for index in sorted(self._handles):
            handle = self._handles[index]
            payload = self._request(handle, "drain", timeout=timeout)
            assert isinstance(payload, dict)
            rows.append(
                WorkerStatus(
                    index=index,
                    group=handle.group,
                    pid=int(payload["pid"]),
                    alive=True,
                    ready=bool(payload["ready"]),
                    lag=int(payload["lag"]),
                    edges=int(payload["edges"]),
                    committed=dict(payload["committed"]),
                    owned=tuple(payload["owned"]),
                    restore_mode=str(payload["restore_mode"]),
                    applied_records=dict(payload["applied_records"]),
                    respawns=handle.respawns,
                    exitcode=None,
                )
            )
        return rows

    def merged_graph(self) -> ConflictHypergraph:
        """The merged shard view, assembled from the workers' graphs
        over the control channel (workers still deferred contribute
        nothing)."""
        graphs: list[ConflictHypergraph] = []
        for index in sorted(self._handles):
            value = self._request(self._handles[index], "graph")
            if value is not None:
                assert isinstance(value, ConflictHypergraph)
                graphs.append(value)
        return merge_graphs(graphs, self.plan.constraint_names)

    def checkpoint(self) -> None:
        """Checkpoint every worker's shard at its committed cut."""
        for index in sorted(self._handles):
            self._request(self._handles[index], "checkpoint")

    # ------------------------------------------------------------- handoff

    def handoff(
        self,
        topic: str,
        to: int,
        on_step: Optional[Callable[[str], None]] = None,
    ) -> HandoffReport:
        """Move ``topic``'s ownership between live worker processes.

        The five-step protocol of
        :meth:`~repro.conflicts.shard.ShardCoordinator.handoff`, driven
        over the control channel; step 2 (``granted``) persists the new
        assignment to ``shards.json`` -- the commit point.  A crash at
        any step converges after :meth:`supervise`: the packets pin the
        suffix, the registrations carry each worker's durable half, and
        respawned workers reconcile against the persisted plan.

        Raises:
            ExecutorError: unknown topic / worker index, or a worker
                died mid-protocol (supervise and re-check; the handoff
                itself needs no retry once ``granted`` was reached).
        """
        step = on_step if on_step is not None else (lambda name: None)
        name = str(topic).lower()
        if name not in self.plan.topic_owner:
            raise ExecutorError(f"unknown topic {name!r}")
        if not 0 <= to < self.workers:
            raise ExecutorError(
                f"worker {to} out of range ({self.workers} workers)"
            )
        old_plan = self.plan
        if old_plan.topic_owner[name] == to:
            return HandoffReport(plan=old_plan, reshapes={})
        assignment = dict(self._assignment)
        assignment[name] = to
        new_plan = plan_assignment(
            self.constraints, self.workers, assignment=assignment
        )
        old_subs = [
            frozenset(spec.subscribed) for spec in old_plan.shards
        ]
        new_subs = [
            frozenset(spec.subscribed) for spec in new_plan.shards
        ]
        needed: set[str] = set()
        for index in range(self.workers):
            needed |= new_subs[index] - old_subs[index]
        needed.discard(SCHEMA_TOPIC)
        # 1) Release: the current owners export packets at their cuts.
        for moved in sorted(needed):
            exporter = old_plan.topic_owner.get(moved)
            if exporter is not None and moved in old_subs[exporter]:
                self._request(
                    self._handles[exporter], "export", topic=moved
                )
        step("released")
        # 2) Grant: persist the new assignment -- the commit point.
        self._assignment = assignment
        self.epoch += 1
        self._store_ownership()
        self.plan = new_plan
        step("granted")
        # 3) Adopt before 4) prune, so retention floors never gap.
        reshapes: Dict[int, ShardReshape] = {}
        adopters = [
            index
            for index in range(self.workers)
            if new_subs[index] - old_subs[index]
        ]
        for index in adopters:
            value = self._request(
                self._handles[index],
                "reshape",
                spec=new_plan.shards[index],
                plan=new_plan,
            )
            assert isinstance(value, ShardReshape)
            reshapes[index] = value
        step("adopted")
        for index in range(self.workers):
            if index not in adopters and (
                new_subs[index] != old_subs[index]
                or new_plan.shards[index] != old_plan.shards[index]
            ):
                value = self._request(
                    self._handles[index],
                    "reshape",
                    spec=new_plan.shards[index],
                    plan=new_plan,
                )
                assert isinstance(value, ShardReshape)
                reshapes[index] = value
        step("pruned")
        # 5) The adopters checkpointed past their cuts; the packets are
        #    spent.
        for moved in sorted(needed):
            self.feed.clear_transfer(moved)
        step("cleared")
        return HandoffReport(plan=new_plan, reshapes=reshapes)

    def rebalance(
        self,
        threshold: int = 0,
        on_step: Optional[Callable[[str], None]] = None,
    ) -> Optional[RebalanceMove]:
        """Trigger at most one live handoff when per-worker load skew
        (owned-topic lag plus hypergraph edge counts, from live status)
        exceeds ``threshold``.  Returns the move made, or None when
        balanced (see :func:`~repro.conflicts.shard.choose_move`)."""
        statuses = {row.index: row for row in self.status()}
        self.feed.refresh()
        ends = self.feed.end_offsets()
        committed = [
            statuses[index].committed if index in statuses else {}
            for index in range(self.workers)
        ]
        edges = [
            statuses[index].edges if index in statuses else 0
            for index in range(self.workers)
        ]
        move = choose_move(
            self.plan, committed, ends, threshold=threshold, edges=edges
        )
        if move is None:
            return None
        self.handoff(move.topic, move.target, on_step=on_step)
        return move

    def sweep_transfers(self) -> list[str]:
        """Clear transfer packets whose adopting owner already
        checkpointed at or past the handoff cut -- the leftovers of a
        handoff that crashed between ``adopted`` and ``cleared``.
        Packets still covering an un-adopted topic stay."""
        cleared: list[str] = []
        points = self.feed.recovery_points()
        for name, cut in sorted(self.feed.transfers().items()):
            owner = self._assignment.get(name)
            if owner is None:
                continue
            point = points.get(f"{self.group_prefix}-{owner}")
            if (
                point is not None
                and point.snapshot is not None
                and point.snapshot.get(name, -1) >= cut
            ):
                self.feed.clear_transfer(name)
                cleared.append(name)
        return cleared

    # ---------------------------------------------------------- supervisor

    def kill(self, index: int) -> None:
        """SIGKILL one worker process (the chaos suite's parent-side
        kill switch).  The worker's group registration survives, so it
        shows up lagging in :meth:`status` until :meth:`supervise`
        respawns it."""
        handle = self._handles[index]
        handle.process.kill()
        handle.process.join(5)

    def supervise(self) -> list[WorkerEvent]:
        """One supervision pass: drain heartbeats, SIGKILL hung workers
        (no heartbeat within the timeout), respawn dead ones from their
        last shard checkpoint, and reconcile survivors whose
        subscriptions drifted from the plan (a handoff that died
        mid-protocol).  Returns the actions taken."""
        events: list[WorkerEvent] = []
        for index in sorted(self._handles):
            handle = self._handles[index]
            usable = self._drain_messages(handle)
            alive = usable and handle.process.is_alive()
            age = time.monotonic() - handle.last_beat
            if alive and age <= self.heartbeat_timeout:
                continue
            if alive:
                handle.process.kill()
                handle.process.join(5)
                reason = "heartbeat-timeout"
            else:
                reason = f"exit:{handle.process.exitcode}"
            handle.conn.close()
            replacement = self._spawn(
                index, chaos_armed=False, checkpoint_on_attach=True
            )
            replacement.respawns += 1
            events.append(
                WorkerEvent(
                    index=index,
                    reason=reason,
                    respawns=replacement.respawns,
                )
            )
        if events:
            self.reconcile()
            self.sweep_transfers()
        return events

    def reconcile(self) -> list[int]:
        """Reshape live workers whose subscription drifted from the
        plan (the survivors of a handoff that died mid-protocol).
        Returns the reshaped worker indexes."""
        reshaped: list[int] = []
        for index in sorted(self._handles):
            handle = self._handles[index]
            spec = self.plan.shards[index]
            try:
                payload = self._request(handle, "status")
            except ExecutorError:
                continue  # dead; the next supervise pass respawns it
            assert isinstance(payload, dict)
            target = sorted(
                {str(t).lower() for t in spec.subscribed} | {SCHEMA_TOPIC}
            )
            if list(payload.get("subscribed", [])) != target:
                self._request(
                    handle, "reshape", spec=spec, plan=self.plan
                )
                reshaped.append(index)
        return reshaped
