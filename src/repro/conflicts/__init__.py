"""Conflict detection (full and incremental) and the conflict hypergraph."""

from repro.conflicts.detection import DetectionReport, detect_conflicts, violations_of
from repro.conflicts.executor import (
    ChaosPlan,
    HandoffReport,
    Ownership,
    ProcessShardExecutor,
    WorkerEvent,
    WorkerStatus,
    load_ownership,
    store_ownership,
)
from repro.conflicts.hypergraph import (
    ConflictHypergraph,
    Vertex,
    minimal_edges,
    vertex,
)
from repro.conflicts.incremental import DeltaStats, IncrementalDetector
from repro.conflicts.replica import ReplicaHypergraph, ReplicaSync
from repro.conflicts.shard import (
    MergedHypergraph,
    RebalanceMove,
    ShardCoordinator,
    ShardPlan,
    ShardReshape,
    ShardSpec,
    ShardStatus,
    ShardWorker,
    TopicResume,
    choose_move,
    merge_graphs,
    plan_assignment,
)

__all__ = [
    "DetectionReport",
    "detect_conflicts",
    "violations_of",
    "ChaosPlan",
    "HandoffReport",
    "Ownership",
    "ProcessShardExecutor",
    "WorkerEvent",
    "WorkerStatus",
    "load_ownership",
    "store_ownership",
    "ConflictHypergraph",
    "Vertex",
    "minimal_edges",
    "vertex",
    "DeltaStats",
    "IncrementalDetector",
    "ReplicaHypergraph",
    "ReplicaSync",
    "MergedHypergraph",
    "RebalanceMove",
    "ShardCoordinator",
    "ShardPlan",
    "ShardReshape",
    "ShardSpec",
    "ShardStatus",
    "ShardWorker",
    "TopicResume",
    "choose_move",
    "merge_graphs",
    "plan_assignment",
]
