"""Sharded per-topic conflict-hypergraph maintenance.

The durable feed partitions the change stream per relation (one topic
each); replicas proved the conflict hypergraph can be rebuilt *away*
from the writer.  This module combines the two into the codebase's
first horizontal scale-out primitive: the hypergraph is maintained by a
set of **shard workers**, each a consumer group over a *subset* of the
topics, and the shards provably add up to the monolith.

The decomposition leans on a locality fact the CQA literature leans on
too (e.g. Koutris & Wijsen's first-order / logspace results for
primary-key CQA): most conflicts are confined to one relation, and a
denial constraint can only ever produce an edge among the relations its
body mentions.  So:

* :func:`plan_assignment` computes a **constraint-aware topic
  assignment**: relations co-referenced by a denial / FK constraint are
  placed on the same worker (the co-reference graph's components are
  the atomic placement units, balanced greedily across workers).  When
  an explicit assignment *does* split a constraint's relations across
  workers, the constraint is flagged **cross-shard** and assigned to a
  designated *owner* -- the worker owning its anchor relation (an FK's
  referencing side; a denial's first atom) -- which additionally
  subscribes to the foreign topics, so the cross-relation residue is
  routed explicitly instead of assumed away.

* :class:`ShardWorker` is a
  :class:`~repro.conflicts.replica.ReplicaHypergraph` over its topic
  subset: it maintains a partial database (rows only for subscribed
  relations) and a partial hypergraph via the existing
  :class:`~repro.conflicts.incremental.IncrementalDetector` machinery,
  and checkpoints its shard through :mod:`repro.engine.snapshot`
  exactly the way the writer checkpoints the whole database -- its
  retention floor pins only its subscribed topics.

* :func:`merge_graphs` / :class:`MergedHypergraph` union the shard
  graphs back into one view: duplicate edges (the same violation
  derived by constraints on two workers) are deduplicated by edge key
  with the label resolved by global constraint order, and subsumption
  is re-checked -- only across shard boundaries, since each shard
  graph is already minimal among its own edges.

* :class:`ShardCoordinator` owns the plan and the workers, drains them,
  assembles a full database from the workers' owned slices, and hands
  :class:`~repro.core.hippo.HippoEngine` a merged view so consistent
  query answering runs off the shards transparently.

The maintained invariant -- pinned by
``tests/property/test_shard_equivalence.py`` -- is that at every
aligned committed cut the merged view equals the monolithic replica's
graph (and therefore full re-detection), including after killing a
worker and restarting it from its shard checkpoint, with every
cross-shard edge produced exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence

from repro.conflicts.hypergraph import ConflictHypergraph, Vertex
from repro.conflicts.replica import ReplicaHypergraph, ReplicaSync
from repro.constraints.denial import to_denial_constraints
from repro.constraints.foreign_key import (
    ForeignKeyConstraint,
    topological_fk_order,
)
from repro.engine.database import Database
from repro.engine.feed import SCHEMA_TOPIC, ChangeFeed
from repro.engine.snapshot import restore_database, snapshot_database
from repro.errors import ConstraintError

if TYPE_CHECKING:
    from repro.core.hippo import HippoEngine


def constraint_relations(constraint: object) -> tuple[str, ...]:
    """The (lower-cased) relations a constraint's evaluation touches.

    The first entry is the constraint's *anchor*: the relation whose
    owning worker evaluates the constraint when its relations span
    shards (an FK's referencing side -- where the dangling singletons
    live; a denial's first atom).
    """
    if isinstance(constraint, ForeignKeyConstraint):
        return (constraint.referencing.lower(), constraint.referenced.lower())
    ordered: dict[str, None] = {}
    for denial in to_denial_constraints([constraint]):
        for atom in denial.atoms:
            ordered.setdefault(atom.relation.lower())
    return tuple(ordered)


def global_constraint_names(constraints: Sequence[object]) -> tuple[str, ...]:
    """Constraint labels in the monolith's derivation order.

    Full detection derives denial violations in constraint-list order
    and FK danglings after all of them (in topological order), and the
    first deriving constraint becomes an edge's stored label.  The
    shard merge resolves duplicate edges by this order, so merged
    labels equal monolithic ones.
    """
    fks = [c for c in constraints if isinstance(c, ForeignKeyConstraint)]
    denials = to_denial_constraints(
        c for c in constraints if not isinstance(c, ForeignKeyConstraint)
    )
    return tuple(d.name for d in denials) + tuple(
        str(fk) for fk in topological_fk_order(fks)
    )


@dataclass(frozen=True)
class ShardSpec:
    """One worker's slice of the plan.

    Attributes:
        index: worker number (0-based).
        owned: topics this worker owns (rows it is authoritative for).
        foreign: topics of *other* workers it additionally subscribes
            to, because it owns a cross-shard constraint that reads
            them.
        subscribed: the full subscription handed to the consumer group
            (owned + foreign + the ``_schema`` topic).
        constraints: the constraints this worker evaluates (original
            objects, original relative order).
        cross_shard: display labels of its cross-shard constraints.
    """

    index: int
    owned: tuple[str, ...]
    foreign: tuple[str, ...]
    subscribed: tuple[str, ...]
    constraints: tuple[object, ...]
    cross_shard: tuple[str, ...]


@dataclass
class ShardPlan:
    """A complete constraint-aware topic assignment.

    Attributes:
        shards: one :class:`ShardSpec` per worker.
        topic_owner: relation (topic) name -> owning worker index.
        constraint_names: global label order (see
            :func:`global_constraint_names`).
        referenced: all FK-referenced relations, passed to every worker
            so the restricted-class check stays global.
    """

    shards: tuple[ShardSpec, ...]
    topic_owner: Dict[str, int]
    constraint_names: tuple[str, ...]
    referenced: frozenset[str]

    @property
    def cross_shard(self) -> tuple[str, ...]:
        """Labels of every cross-shard constraint, worker order."""
        labels: list[str] = []
        for spec in self.shards:
            labels.extend(spec.cross_shard)
        return tuple(labels)


def plan_assignment(
    constraints: Iterable[object],
    workers: int = 2,
    relations: Iterable[str] = (),
    assignment: Optional[Dict[str, int]] = None,
) -> ShardPlan:
    """Compute a constraint-aware topic assignment over ``workers``.

    Relations co-referenced by a constraint are kept on one worker: the
    co-reference graph's connected components are placed whole, largest
    first, each onto the currently least-loaded worker.  ``relations``
    adds topics no constraint mentions (they still need an owner);
    ``assignment`` pins relations to workers explicitly -- the operator
    override, and the way tests force a constraint across shards.  A
    pinned relation drags the unpinned remainder of its component to
    its worker; a constraint whose relations still land on different
    workers is flagged cross-shard and owned by its anchor's worker,
    which subscribes to the foreign topics.

    Raises:
        ConstraintError: on ``workers < 1``, a pinned worker index out
            of range, or a cyclic FK reference graph (validated
            globally here -- no single worker may see all of a
            cross-shard cycle).
    """
    if workers < 1:
        raise ConstraintError("a shard plan needs at least one worker")
    constraint_list = list(constraints)
    fks = [c for c in constraint_list if isinstance(c, ForeignKeyConstraint)]
    topological_fk_order(fks)  # global acyclicity check, up front
    per_constraint = [constraint_relations(c) for c in constraint_list]

    known: dict[str, None] = {}
    for rels in per_constraint:
        for relation in rels:
            known.setdefault(relation)
    for relation in relations:
        known.setdefault(str(relation).lower())
    pinned: dict[str, int] = {}
    for relation, worker in (assignment or {}).items():
        if not 0 <= worker < workers:
            raise ConstraintError(
                f"assignment pins {relation!r} to worker {worker},"
                f" but the plan has {workers} workers"
            )
        key = str(relation).lower()
        known.setdefault(key)
        pinned[key] = worker

    # Union-find over co-referenced relations: components place whole.
    parent = {relation: relation for relation in known}

    def find(relation: str) -> str:
        root = relation
        while parent[root] != root:
            root = parent[root]
        parent[relation] = root
        return root

    for rels in per_constraint:
        for other in rels[1:]:
            left, right = find(rels[0]), find(other)
            if left != right:
                parent[left] = right
    components: dict[str, list[str]] = {}
    for relation in sorted(known):
        components.setdefault(find(relation), []).append(relation)

    owner: dict[str, int] = dict(pinned)
    loads = [0] * workers
    for worker in pinned.values():
        loads[worker] += 1
    for component in sorted(
        components.values(), key=lambda c: (-len(c), c[0])
    ):
        unassigned = [r for r in component if r not in owner]
        if not unassigned:
            continue
        pinned_in = [r for r in component if r in owner]
        if pinned_in:
            # A pinned member anchors the component's remainder.
            worker = owner[pinned_in[0]]
        else:
            worker = min(range(workers), key=lambda i: (loads[i], i))
        for relation in unassigned:
            owner[relation] = worker
            loads[worker] += 1

    shard_constraints: list[list[object]] = [[] for _ in range(workers)]
    shard_cross: list[list[str]] = [[] for _ in range(workers)]
    shard_foreign: list[dict[str, None]] = [{} for _ in range(workers)]
    for constraint, rels in zip(constraint_list, per_constraint):
        worker = owner[rels[0]]
        shard_constraints[worker].append(constraint)
        if len({owner[r] for r in rels}) > 1:
            shard_cross[worker].append(str(constraint))
            for relation in rels:
                if owner[relation] != worker:
                    shard_foreign[worker].setdefault(relation)
    owned: list[list[str]] = [[] for _ in range(workers)]
    for relation in sorted(owner):
        owned[owner[relation]].append(relation)
    shards = tuple(
        ShardSpec(
            index=index,
            owned=tuple(owned[index]),
            foreign=tuple(shard_foreign[index]),
            subscribed=tuple(
                dict.fromkeys(
                    [*owned[index], *shard_foreign[index], SCHEMA_TOPIC]
                )
            ),
            constraints=tuple(shard_constraints[index]),
            cross_shard=tuple(shard_cross[index]),
        )
        for index in range(workers)
    )
    return ShardPlan(
        shards=shards,
        topic_owner=owner,
        constraint_names=global_constraint_names(constraint_list),
        referenced=frozenset(fk.referenced.lower() for fk in fks),
    )


def merge_graphs(
    graphs: Iterable[ConflictHypergraph],
    constraint_names: Sequence[str] = (),
) -> ConflictHypergraph:
    """Union shard graphs into one minimal hypergraph.

    Duplicate edges (the same violation derived by constraints on two
    different workers) are deduplicated by edge key; the surviving
    label is the supporting constraint earliest in
    ``constraint_names`` -- the same tie-break the monolith's first-
    derivation-wins rule produces.  Subsumption is then re-checked
    smallest-edge-first; since each input graph is already minimal
    among its own edges, every subsuming pair this pass finds is
    necessarily cross-shard.
    """
    rank = {name: index for index, name in enumerate(constraint_names)}
    worst = len(rank)
    best: dict[frozenset[Vertex], str] = {}
    for graph in graphs:
        for edge, label in zip(graph.edges, graph.edge_labels):
            current = best.get(edge)
            if current is None or rank.get(label, worst) < rank.get(
                current, worst
            ):
                best[edge] = label
    merged = ConflictHypergraph()
    for edge in sorted(best, key=len):
        if not merged.subset_edges(edge):
            merged.add_edge(edge, best[edge])
    return merged


class MergedHypergraph:
    """A live union view over a set of shard workers' graphs.

    Recomputed from the current shard graphs on every access, so worker
    syncs, retractions and cross-boundary resurrections are always
    reflected; workers whose detection is still deferred (constraint
    tables not replicated yet) contribute nothing.
    """

    def __init__(
        self,
        workers: Sequence["ShardWorker"],
        constraint_names: Sequence[str] = (),
    ) -> None:
        self.workers = workers
        self.constraint_names = tuple(constraint_names)

    @property
    def graph(self) -> ConflictHypergraph:
        """The merged graph, rebuilt from the shard graphs *now*.

        Never cached: each access re-merges, so it is always consistent
        with the workers' latest synced cuts (callers wanting a stable
        view across several reads should bind the property once).
        """
        return merge_graphs(
            (worker.graph for worker in self.workers if worker.ready),
            self.constraint_names,
        )

    def as_dict(self) -> dict[frozenset[Vertex], str]:
        """Edge -> constraint-name mapping of the merged graph (built
        fresh per call, like :attr:`graph`)."""
        return self.graph.as_dict()


class ShardWorker(ReplicaHypergraph):
    """One consumer group maintaining one shard of the hypergraph.

    A :class:`~repro.conflicts.replica.ReplicaHypergraph` over the
    spec's topic subset and constraint slice: the worker's database
    carries rows only for its subscribed relations, its graph only the
    edges its constraints derive, and its checkpoints
    (:meth:`~repro.conflicts.replica.ReplicaHypergraph.checkpoint`)
    are partial snapshots bound to the shard's committed cut -- the
    worker restarts from them exactly like the writer restarts from
    its own checkpoint, and its retention floor pins only its topics.
    """

    def __init__(
        self,
        feed: ChangeFeed,
        spec: ShardSpec,
        plan: ShardPlan,
        group: Optional[str] = None,
        snapshots: bool = True,
        checkpoint_records: Optional[int] = None,
        batch_apply: bool = True,
    ) -> None:
        self.spec = spec
        super().__init__(
            feed,
            spec.constraints,
            group=group if group is not None else f"shard-{spec.index}",
            snapshots=snapshots,
            checkpoint_records=checkpoint_records,
            topics=spec.subscribed,
            extra_referenced=plan.referenced,
            batch_apply=batch_apply,
        )


class ShardCoordinator:
    """Plans the assignment, runs the workers, merges the shards.

    Args:
        feed: the feed to shard over -- typically a *reader*
            :class:`~repro.engine.feed.ChangeFeed` instance on the
            writer's directory (the coordinator never closes it; the
            caller owns it).  All workers attach to this instance under
            their own consumer groups, so they also run one-per-process
            against separate reader instances unchanged.
        constraints: the full constraint set (split across workers by
            the plan).
        workers: number of shard workers.
        relations: extra topics to assign that no constraint mentions
            and the feed has not seen yet (lets the coordinator attach
            before the writer creates its tables).
        assignment: explicit relation -> worker pinning (see
            :func:`plan_assignment`).
        group_prefix: consumer groups are named ``{prefix}-{index}``.
        snapshots / checkpoint_records: forwarded to every worker.
    """

    def __init__(
        self,
        feed: ChangeFeed,
        constraints: Iterable[object],
        workers: int = 2,
        relations: Iterable[str] = (),
        assignment: Optional[Dict[str, int]] = None,
        group_prefix: str = "shard",
        snapshots: bool = True,
        checkpoint_records: Optional[int] = None,
    ) -> None:
        self.feed = feed
        self.constraints = list(constraints)
        self._snapshots = snapshots
        self._checkpoint_records = checkpoint_records
        feed.refresh()
        discovered = [
            t.name for t in feed.topics() if t.name != SCHEMA_TOPIC
        ]
        self.plan = plan_assignment(
            self.constraints,
            workers,
            relations=[*discovered, *relations],
            assignment=assignment,
        )
        self.workers: list[ShardWorker] = [
            ShardWorker(
                feed,
                spec,
                self.plan,
                group=f"{group_prefix}-{spec.index}",
                snapshots=snapshots,
                checkpoint_records=checkpoint_records,
            )
            for spec in self.plan.shards
        ]
        self.merged = MergedHypergraph(self.workers, self.plan.constraint_names)

    # ------------------------------------------------------------- running

    @property
    def lag(self) -> int:
        """Feed records pending across all shards."""
        return sum(worker.lag for worker in self.workers)

    @property
    def ready(self) -> bool:
        """Whether every worker maintains a graph (none deferred)."""
        return all(worker.ready for worker in self.workers)

    @property
    def graph(self) -> ConflictHypergraph:
        """The merged shard view (see :class:`MergedHypergraph`)."""
        return self.merged.graph

    def sync(self, limit: Optional[int] = None) -> list[ReplicaSync]:
        """One bounded sync per worker (round-robin fairness)."""
        return [worker.sync(limit) for worker in self.workers]

    def drain(self) -> int:
        """Sync every worker until its lag is zero; returns records
        consumed.  After a drain the shards sit at an *aligned* cut --
        the precondition for comparing the merged view against a
        monolith (the writer must be quiescent and flushed)."""
        total = 0
        for worker in self.workers:
            while worker.lag:
                total += worker.sync().records
        return total

    def checkpoint(self) -> None:
        """Checkpoint every worker's shard at its committed cut."""
        for worker in self.workers:
            worker.checkpoint()

    def restart(self, index: int) -> ShardWorker:
        """Kill one worker and re-attach it from its durable state.

        The old worker's uncommitted progress is discarded (its
        consumer deregisters in memory only -- committed offsets and
        shard checkpoints survive, exactly like a process crash); the
        fresh worker bootstraps from the group's snapshot / committed
        cut and resumes.  Returns the replacement.
        """
        old = self.workers[index]
        old._consumer.close()
        self.workers[index] = ShardWorker(
            self.feed,
            self.plan.shards[index],
            self.plan,
            group=old.group,
            snapshots=self._snapshots,
            checkpoint_records=self._checkpoint_records,
        )
        return self.workers[index]

    # ------------------------------------------------------------ querying

    def database(self) -> Database:
        """Assemble one full database from the workers' owned slices.

        Each worker is authoritative for the rows of its *owned* topics
        (foreign subscriptions are read-only copies), so restoring each
        owned slice into one target -- schemas merged, rows disjoint,
        tids preserved -- reproduces the primary at the aligned cut.
        Call after :meth:`drain`.
        """
        db = Database()
        for worker in self.workers:
            restore_database(
                db,
                snapshot_database(worker.db, tables=worker.spec.owned),
                merge=True,
            )
        return db

    def engine(self, **kwargs: object) -> HippoEngine:
        """A :class:`~repro.core.hippo.HippoEngine` answering from the
        shards: the assembled database plus the merged hypergraph
        (handed over as precomputed detection, so the engine never
        re-detects).  Consistent-query answering then runs the paper's
        pipeline transparently over shard state."""
        from repro.core.hippo import HippoEngine

        return HippoEngine(
            self.database(), self.constraints, hypergraph=self.graph, **kwargs
        )

    def close(self) -> None:
        """Close every worker (checkpointing durable shards); the feed
        stays open -- the caller owns it."""
        for worker in self.workers:
            worker.close()
