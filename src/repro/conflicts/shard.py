"""Sharded per-topic conflict-hypergraph maintenance.

The durable feed partitions the change stream per relation (one topic
each); replicas proved the conflict hypergraph can be rebuilt *away*
from the writer.  This module combines the two into the codebase's
first horizontal scale-out primitive: the hypergraph is maintained by a
set of **shard workers**, each a consumer group over a *subset* of the
topics, and the shards provably add up to the monolith.

The decomposition leans on a locality fact the CQA literature leans on
too (e.g. Koutris & Wijsen's first-order / logspace results for
primary-key CQA): most conflicts are confined to one relation, and a
denial constraint can only ever produce an edge among the relations its
body mentions.  So:

* :func:`plan_assignment` computes a **constraint-aware topic
  assignment**: relations co-referenced by a denial / FK constraint are
  placed on the same worker (the co-reference graph's components are
  the atomic placement units, balanced greedily across workers).  When
  an explicit assignment *does* split a constraint's relations across
  workers, the constraint is flagged **cross-shard** and assigned to a
  designated *owner* -- the worker owning its anchor relation (an FK's
  referencing side; a denial's first atom) -- which additionally
  subscribes to the foreign topics, so the cross-relation residue is
  routed explicitly instead of assumed away.

* :class:`ShardWorker` is a
  :class:`~repro.conflicts.replica.ReplicaHypergraph` over its topic
  subset: it maintains a partial database (rows only for subscribed
  relations) and a partial hypergraph via the existing
  :class:`~repro.conflicts.incremental.IncrementalDetector` machinery,
  and checkpoints its shard through :mod:`repro.engine.snapshot`
  exactly the way the writer checkpoints the whole database -- its
  retention floor pins only its subscribed topics.

* :func:`merge_graphs` / :class:`MergedHypergraph` union the shard
  graphs back into one view: duplicate edges (the same violation
  derived by constraints on two workers) are deduplicated by edge key
  with the label resolved by global constraint order, and subsumption
  is re-checked -- only across shard boundaries, since each shard
  graph is already minimal among its own edges.

* :class:`ShardCoordinator` owns the plan and the workers, drains them,
  assembles a full database from the workers' owned slices, and hands
  :class:`~repro.core.hippo.HippoEngine` a merged view so consistent
  query answering runs off the shards transparently.

The maintained invariant -- pinned by
``tests/property/test_shard_equivalence.py`` -- is that at every
aligned committed cut the merged view equals the monolithic replica's
graph (and therefore full re-detection), including after killing a
worker and restarting it from its shard checkpoint, with every
cross-shard edge produced exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Mapping,
    Optional,
    Sequence,
)

from repro.conflicts.hypergraph import ConflictHypergraph, Vertex
from repro.conflicts.replica import ReplicaHypergraph, ReplicaSync
from repro.constraints.denial import to_denial_constraints
from repro.constraints.foreign_key import (
    ForeignKeyConstraint,
    topological_fk_order,
)
from repro.engine.database import Database
from repro.engine.feed import SCHEMA_TOPIC, ChangeFeed
from repro.engine.snapshot import restore_database, snapshot_database
from repro.errors import CatalogError, ConstraintError, FeedError

if TYPE_CHECKING:
    from repro.core.hippo import HippoEngine


def constraint_relations(constraint: object) -> tuple[str, ...]:
    """The (lower-cased) relations a constraint's evaluation touches.

    The first entry is the constraint's *anchor*: the relation whose
    owning worker evaluates the constraint when its relations span
    shards (an FK's referencing side -- where the dangling singletons
    live; a denial's first atom).
    """
    if isinstance(constraint, ForeignKeyConstraint):
        return (constraint.referencing.lower(), constraint.referenced.lower())
    ordered: dict[str, None] = {}
    for denial in to_denial_constraints([constraint]):
        for atom in denial.atoms:
            ordered.setdefault(atom.relation.lower())
    return tuple(ordered)


def global_constraint_names(constraints: Sequence[object]) -> tuple[str, ...]:
    """Constraint labels in the monolith's derivation order.

    Full detection derives denial violations in constraint-list order
    and FK danglings after all of them (in topological order), and the
    first deriving constraint becomes an edge's stored label.  The
    shard merge resolves duplicate edges by this order, so merged
    labels equal monolithic ones.
    """
    fks = [c for c in constraints if isinstance(c, ForeignKeyConstraint)]
    denials = to_denial_constraints(
        c for c in constraints if not isinstance(c, ForeignKeyConstraint)
    )
    return tuple(d.name for d in denials) + tuple(
        str(fk) for fk in topological_fk_order(fks)
    )


@dataclass(frozen=True)
class ShardSpec:
    """One worker's slice of the plan.

    Attributes:
        index: worker number (0-based).
        owned: topics this worker owns (rows it is authoritative for).
        foreign: topics of *other* workers it additionally subscribes
            to, because it owns a cross-shard constraint that reads
            them.
        subscribed: the full subscription handed to the consumer group
            (owned + foreign + the ``_schema`` topic).
        constraints: the constraints this worker evaluates (original
            objects, original relative order).
        cross_shard: display labels of its cross-shard constraints.
    """

    index: int
    owned: tuple[str, ...]
    foreign: tuple[str, ...]
    subscribed: tuple[str, ...]
    constraints: tuple[object, ...]
    cross_shard: tuple[str, ...]


@dataclass
class ShardPlan:
    """A complete constraint-aware topic assignment.

    Attributes:
        shards: one :class:`ShardSpec` per worker.
        topic_owner: relation (topic) name -> owning worker index.
        constraint_names: global label order (see
            :func:`global_constraint_names`).
        referenced: all FK-referenced relations, passed to every worker
            so the restricted-class check stays global.
    """

    shards: tuple[ShardSpec, ...]
    topic_owner: Dict[str, int]
    constraint_names: tuple[str, ...]
    referenced: frozenset[str]

    @property
    def cross_shard(self) -> tuple[str, ...]:
        """Labels of every cross-shard constraint, worker order."""
        labels: list[str] = []
        for spec in self.shards:
            labels.extend(spec.cross_shard)
        return tuple(labels)


@dataclass(frozen=True)
class TopicResume:
    """How one :meth:`ShardWorker.reshape` acquired one new topic.

    Attributes:
        topic: the adopted topic.
        cut: the offset the worker resumed the topic from (the handoff
            cut when a transfer packet existed, else 0).
        end: the topic's feed end at adoption time -- ``end - cut`` is
            the retained suffix the worker will replay through ordinary
            syncs (the "no full re-bootstrap" bound).
        mode: ``"packet"`` (restored a transfer packet) or ``"replay"``
            (no packet pending; the topic replays from offset 0).
        baseline: the worker's ``applied_records`` count for the topic
            at adoption -- subtract it later to measure exactly how
            many records the resume replayed.
    """

    topic: str
    cut: int
    end: int
    mode: str
    baseline: int


@dataclass(frozen=True)
class ShardReshape:
    """What one :meth:`ShardWorker.reshape` transition did."""

    added: tuple[TopicResume, ...]
    dropped: tuple[str, ...]


@dataclass(frozen=True)
class ShardStatus:
    """One worker's row in :meth:`ShardCoordinator.status`.

    A worker whose consumer is closed or abandoned (it died somewhere
    in the apply/commit/checkpoint pipeline) is reported with
    ``alive=False`` and its lag computed from the group's *registered*
    offsets -- lagging, never silently absent."""

    index: int
    group: str
    alive: bool
    ready: bool
    lag: int
    edges: int
    owned: tuple[str, ...]
    committed: dict[str, int]


@dataclass(frozen=True)
class RebalanceMove:
    """One ownership move proposed by :func:`choose_move`."""

    topic: str
    source: int
    target: int
    skew_before: int
    skew_after: int


def choose_move(
    plan: ShardPlan,
    committed_by_worker: Sequence[Mapping[str, int]],
    ends: Mapping[str, int],
    threshold: int = 0,
    edges: Optional[Sequence[int]] = None,
) -> Optional[RebalanceMove]:
    """Deterministically pick one topic move that reduces load skew.

    A worker's load is its pending records across *owned* topics (feed
    end minus committed offset), plus its hypergraph edge count when
    ``edges`` is given -- the two skew signals the rebalance trigger
    watches.  When the heaviest and lightest workers differ by more
    than ``threshold``, the candidate moves are the heavy worker's
    owned topics; the move minimizing the resulting skew wins (ties
    break on topic name), and None is returned when the skew is within
    threshold or no single move strictly improves it.  Pure and
    deterministic, so the in-process coordinator, the process executor
    and the CLI's dry-run advisor all agree on the same move.
    """
    workers = len(plan.shards)
    if workers < 2:
        return None
    lags: list[dict[str, int]] = []
    for spec in plan.shards:
        committed = (
            committed_by_worker[spec.index]
            if spec.index < len(committed_by_worker)
            else {}
        )
        lags.append(
            {
                name: max(int(ends.get(name, 0)) - int(committed.get(name, 0)), 0)
                for name in spec.owned
            }
        )
    loads = [
        (edges[index] if edges is not None and index < len(edges) else 0)
        + sum(lags[index].values())
        for index in range(workers)
    ]
    heavy = max(range(workers), key=lambda i: (loads[i], -i))
    light = min(range(workers), key=lambda i: (loads[i], i))
    skew = loads[heavy] - loads[light]
    if heavy == light or skew <= threshold:
        return None
    best: Optional[RebalanceMove] = None
    for name in sorted(lags[heavy]):
        weight = lags[heavy][name]
        if weight <= 0:
            continue  # moving a drained topic moves no load
        moved = list(loads)
        moved[heavy] -= weight
        moved[light] += weight
        new_skew = max(moved) - min(moved)
        if new_skew < skew and (best is None or new_skew < best.skew_after):
            best = RebalanceMove(
                topic=name,
                source=heavy,
                target=light,
                skew_before=skew,
                skew_after=new_skew,
            )
    return best


def plan_assignment(
    constraints: Iterable[object],
    workers: int = 2,
    relations: Iterable[str] = (),
    assignment: Optional[Dict[str, int]] = None,
) -> ShardPlan:
    """Compute a constraint-aware topic assignment over ``workers``.

    Relations co-referenced by a constraint are kept on one worker: the
    co-reference graph's connected components are placed whole, largest
    first, each onto the currently least-loaded worker.  ``relations``
    adds topics no constraint mentions (they still need an owner);
    ``assignment`` pins relations to workers explicitly -- the operator
    override, and the way tests force a constraint across shards.  A
    pinned relation drags the unpinned remainder of its component to
    its worker; a constraint whose relations still land on different
    workers is flagged cross-shard and owned by its anchor's worker,
    which subscribes to the foreign topics.

    Raises:
        ConstraintError: on ``workers < 1``, a pinned worker index out
            of range, or a cyclic FK reference graph (validated
            globally here -- no single worker may see all of a
            cross-shard cycle).
    """
    if workers < 1:
        raise ConstraintError("a shard plan needs at least one worker")
    constraint_list = list(constraints)
    fks = [c for c in constraint_list if isinstance(c, ForeignKeyConstraint)]
    topological_fk_order(fks)  # global acyclicity check, up front
    per_constraint = [constraint_relations(c) for c in constraint_list]

    known: dict[str, None] = {}
    for rels in per_constraint:
        for relation in rels:
            known.setdefault(relation)
    for relation in relations:
        known.setdefault(str(relation).lower())
    pinned: dict[str, int] = {}
    for relation, worker in (assignment or {}).items():
        if not 0 <= worker < workers:
            raise ConstraintError(
                f"assignment pins {relation!r} to worker {worker},"
                f" but the plan has {workers} workers"
            )
        key = str(relation).lower()
        known.setdefault(key)
        pinned[key] = worker

    # Union-find over co-referenced relations: components place whole.
    parent = {relation: relation for relation in known}

    def find(relation: str) -> str:
        root = relation
        while parent[root] != root:
            root = parent[root]
        parent[relation] = root
        return root

    for rels in per_constraint:
        for other in rels[1:]:
            left, right = find(rels[0]), find(other)
            if left != right:
                parent[left] = right
    components: dict[str, list[str]] = {}
    for relation in sorted(known):
        components.setdefault(find(relation), []).append(relation)

    owner: dict[str, int] = dict(pinned)
    loads = [0] * workers
    for worker in pinned.values():
        loads[worker] += 1
    for component in sorted(
        components.values(), key=lambda c: (-len(c), c[0])
    ):
        unassigned = [r for r in component if r not in owner]
        if not unassigned:
            continue
        pinned_in = [r for r in component if r in owner]
        if pinned_in:
            # A pinned member anchors the component's remainder.
            worker = owner[pinned_in[0]]
        else:
            worker = min(range(workers), key=lambda i: (loads[i], i))
        for relation in unassigned:
            owner[relation] = worker
            loads[worker] += 1

    shard_constraints: list[list[object]] = [[] for _ in range(workers)]
    shard_cross: list[list[str]] = [[] for _ in range(workers)]
    shard_foreign: list[dict[str, None]] = [{} for _ in range(workers)]
    for constraint, rels in zip(constraint_list, per_constraint):
        worker = owner[rels[0]]
        shard_constraints[worker].append(constraint)
        if len({owner[r] for r in rels}) > 1:
            shard_cross[worker].append(str(constraint))
            for relation in rels:
                if owner[relation] != worker:
                    shard_foreign[worker].setdefault(relation)
    owned: list[list[str]] = [[] for _ in range(workers)]
    for relation in sorted(owner):
        owned[owner[relation]].append(relation)
    shards = tuple(
        ShardSpec(
            index=index,
            owned=tuple(owned[index]),
            foreign=tuple(shard_foreign[index]),
            subscribed=tuple(
                dict.fromkeys(
                    [*owned[index], *shard_foreign[index], SCHEMA_TOPIC]
                )
            ),
            constraints=tuple(shard_constraints[index]),
            cross_shard=tuple(shard_cross[index]),
        )
        for index in range(workers)
    )
    return ShardPlan(
        shards=shards,
        topic_owner=owner,
        constraint_names=global_constraint_names(constraint_list),
        referenced=frozenset(fk.referenced.lower() for fk in fks),
    )


def merge_graphs(
    graphs: Iterable[ConflictHypergraph],
    constraint_names: Sequence[str] = (),
) -> ConflictHypergraph:
    """Union shard graphs into one minimal hypergraph.

    Duplicate edges (the same violation derived by constraints on two
    different workers) are deduplicated by edge key; the surviving
    label is the supporting constraint earliest in
    ``constraint_names`` -- the same tie-break the monolith's first-
    derivation-wins rule produces.  Subsumption is then re-checked
    smallest-edge-first; since each input graph is already minimal
    among its own edges, every subsuming pair this pass finds is
    necessarily cross-shard.
    """
    rank = {name: index for index, name in enumerate(constraint_names)}
    worst = len(rank)
    best: dict[frozenset[Vertex], str] = {}
    for graph in graphs:
        for edge, label in zip(graph.edges, graph.edge_labels):
            current = best.get(edge)
            if current is None or rank.get(label, worst) < rank.get(
                current, worst
            ):
                best[edge] = label
    merged = ConflictHypergraph()
    for edge in sorted(best, key=len):
        if not merged.subset_edges(edge):
            merged.add_edge(edge, best[edge])
    return merged


class MergedHypergraph:
    """A live union view over a set of shard workers' graphs.

    Recomputed from the current shard graphs on every access, so worker
    syncs, retractions and cross-boundary resurrections are always
    reflected; workers whose detection is still deferred (constraint
    tables not replicated yet) contribute nothing.
    """

    def __init__(
        self,
        workers: Sequence["ShardWorker"],
        constraint_names: Sequence[str] = (),
    ) -> None:
        self.workers = workers
        self.constraint_names = tuple(constraint_names)

    @property
    def graph(self) -> ConflictHypergraph:
        """The merged graph, rebuilt from the shard graphs *now*.

        Never cached: each access re-merges, so it is always consistent
        with the workers' latest synced cuts (callers wanting a stable
        view across several reads should bind the property once).
        """
        return merge_graphs(
            (worker.graph for worker in self.workers if worker.ready),
            self.constraint_names,
        )

    def as_dict(self) -> dict[frozenset[Vertex], str]:
        """Edge -> constraint-name mapping of the merged graph (built
        fresh per call, like :attr:`graph`)."""
        return self.graph.as_dict()


class ShardWorker(ReplicaHypergraph):
    """One consumer group maintaining one shard of the hypergraph.

    A :class:`~repro.conflicts.replica.ReplicaHypergraph` over the
    spec's topic subset and constraint slice: the worker's database
    carries rows only for its subscribed relations, its graph only the
    edges its constraints derive, and its checkpoints
    (:meth:`~repro.conflicts.replica.ReplicaHypergraph.checkpoint`)
    are partial snapshots bound to the shard's committed cut -- the
    worker restarts from them exactly like the writer restarts from
    its own checkpoint, and its retention floor pins only its topics.
    """

    def __init__(
        self,
        feed: ChangeFeed,
        spec: ShardSpec,
        plan: ShardPlan,
        group: Optional[str] = None,
        snapshots: bool = True,
        checkpoint_records: Optional[int] = None,
        batch_apply: bool = True,
        bootstrap: str = "replay",
    ) -> None:
        self.spec = spec
        super().__init__(
            feed,
            spec.constraints,
            group=group if group is not None else f"shard-{spec.index}",
            snapshots=snapshots,
            checkpoint_records=checkpoint_records,
            topics=spec.subscribed,
            extra_referenced=plan.referenced,
            batch_apply=batch_apply,
            bootstrap=bootstrap,
        )

    # ------------------------------------------------------------- handoff

    def export_topic(self, topic: str) -> int:
        """Store a transfer packet for ``topic`` at this worker's
        committed cut: the *releasing* half of the handoff protocol.

        Call at a sync boundary (between :meth:`sync` calls), where the
        worker's database reflects its committed offsets exactly -- the
        packet it stores then *is* the topic's state at the cut, and
        the adopting worker resumes from it plus the retained suffix.
        The packet itself pins the topic's retention at the cut, so the
        suffix stays readable across the whole handoff window, whatever
        order the two workers persist their resubscriptions in.  This
        worker keeps serving the topic until :meth:`reshape` drops it.
        Returns the cut offset.

        Raises:
            FeedError: when this worker does not subscribe the topic.
        """
        name = str(topic).lower()
        if self.topics is not None and name not in self.topics:
            raise FeedError(
                f"worker group {self.group!r} does not subscribe {name!r}"
            )
        cut = self._consumer.committed.get(name, 0)
        self.feed.store_transfer(
            name, cut, snapshot_database(self.db, tables=[name])
        )
        self._mark("release", name)
        return cut

    def reshape(self, spec: ShardSpec, plan: ShardPlan) -> ShardReshape:
        """Transition this worker to a new plan slice, in place.

        The *adopting* half of the handoff protocol.  Every newly
        subscribed topic resumes from its pending transfer packet --
        the releasing worker's state at the handoff cut, restored
        directly into the partial database -- so only the retained
        suffix past the cut replays through ordinary syncs: no full
        re-bootstrap.  (With no packet pending, a new topic replays
        its retained history from offset 0.)  Topics dropped from the
        subscription release their rows and their retention hold.  The
        worker's constraint slice and detector are rebuilt for the new
        spec, and a checkpoint binds the result (durable feeds), after
        which the packet and the releasing worker's floor no longer
        pin retention.

        Raises:
            FeedError: when a new topic has neither a transfer packet
                nor its history retained from offset 0 -- adopting it
                would silently lose records.
        """
        new_topics = frozenset(
            {str(t).lower() for t in spec.subscribed} | {SCHEMA_TOPIC}
        )
        old_topics = (
            self.topics if self.topics is not None else new_topics
        )
        added = sorted(new_topics - old_topics)
        dropped = sorted(old_topics - new_topics)
        self.feed.refresh()
        starts = {t.name: t.start for t in self.feed.topics()}
        ends = self.feed.end_offsets()
        positions: dict[str, int] = {}
        resumes: list[TopicResume] = []
        for name in added:
            packet = self.feed.load_transfer(name)
            if packet is not None:
                cut, payload = packet
                restore_database(self.db, payload, tables=[name], merge=True)
                mode = "packet"
            elif starts.get(name, 0) > 0:
                raise FeedError(
                    f"cannot adopt topic {name!r}: no transfer packet is"
                    f" pending and its history below offset"
                    f" {starts[name]} was reclaimed"
                )
            else:
                cut, mode = 0, "replay"
            positions[name] = cut
            resumes.append(
                TopicResume(
                    topic=name,
                    cut=cut,
                    end=ends.get(name, 0),
                    mode=mode,
                    baseline=self.applied_records.get(name, 0),
                )
            )
        with self.db.changes.feed.suspended():
            for name in dropped:
                self._release_rows(name)
        # The resubscription is the worker's durable half of the grant:
        # from here its registration pins the new topics at their cuts
        # and no longer pins the dropped ones.
        self._consumer.resubscribe(new_topics, positions)
        self.topics = new_topics
        self.spec = spec
        self.constraints = list(spec.constraints)
        self.extra_referenced = plan.referenced
        self._mark("adopt", added[0] if added else None)
        # The constraint slice changed: rebuild detection over the new
        # partial database (cheap -- in-memory, no feed replay).
        self._detector = None
        self._needs_full = True
        try:
            self._full_detect()
        except CatalogError:
            pass  # stays deferred until the missing DDL replicates
        if self._snapshots:
            self.checkpoint()
        return ShardReshape(added=tuple(resumes), dropped=tuple(dropped))

    def _release_rows(self, topic: str) -> None:
        """Drop every row of a released topic's table (the schema stays
        -- it replicates via ``_schema`` for everyone)."""
        if not self.db.catalog.has_table(topic):
            return
        table = self.db.table(topic)
        for tid in list(table.tids()):
            table.delete(tid)


class ShardCoordinator:
    """Plans the assignment, runs the workers, merges the shards.

    Args:
        feed: the feed to shard over -- typically a *reader*
            :class:`~repro.engine.feed.ChangeFeed` instance on the
            writer's directory (the coordinator never closes it; the
            caller owns it).  All workers attach to this instance under
            their own consumer groups, so they also run one-per-process
            against separate reader instances unchanged.
        constraints: the full constraint set (split across workers by
            the plan).
        workers: number of shard workers.
        relations: extra topics to assign that no constraint mentions
            and the feed has not seen yet (lets the coordinator attach
            before the writer creates its tables).
        assignment: explicit relation -> worker pinning (see
            :func:`plan_assignment`).
        group_prefix: consumer groups are named ``{prefix}-{index}``.
        snapshots / checkpoint_records: forwarded to every worker.
    """

    def __init__(
        self,
        feed: ChangeFeed,
        constraints: Iterable[object],
        workers: int = 2,
        relations: Iterable[str] = (),
        assignment: Optional[Dict[str, int]] = None,
        group_prefix: str = "shard",
        snapshots: bool = True,
        checkpoint_records: Optional[int] = None,
    ) -> None:
        self.feed = feed
        self.constraints = list(constraints)
        self._snapshots = snapshots
        self._checkpoint_records = checkpoint_records
        feed.refresh()
        discovered = [
            t.name for t in feed.topics() if t.name != SCHEMA_TOPIC
        ]
        self.plan = plan_assignment(
            self.constraints,
            workers,
            relations=[*discovered, *relations],
            assignment=assignment,
        )
        self.workers: list[ShardWorker] = [
            ShardWorker(
                feed,
                spec,
                self.plan,
                group=f"{group_prefix}-{spec.index}",
                snapshots=snapshots,
                checkpoint_records=checkpoint_records,
            )
            for spec in self.plan.shards
        ]
        self.merged = MergedHypergraph(self.workers, self.plan.constraint_names)

    # ------------------------------------------------------------- running

    @property
    def lag(self) -> int:
        """Feed records pending across all shards."""
        return sum(worker.lag for worker in self.workers)

    @property
    def ready(self) -> bool:
        """Whether every worker maintains a graph (none deferred)."""
        return all(worker.ready for worker in self.workers)

    @property
    def graph(self) -> ConflictHypergraph:
        """The merged shard view (see :class:`MergedHypergraph`)."""
        return self.merged.graph

    def sync(self, limit: Optional[int] = None) -> list[ReplicaSync]:
        """One bounded sync per worker (round-robin fairness)."""
        return [worker.sync(limit) for worker in self.workers]

    def drain(self) -> int:
        """Sync every worker until its lag is zero; returns records
        consumed.  After a drain the shards sit at an *aligned* cut --
        the precondition for comparing the merged view against a
        monolith (the writer must be quiescent and flushed)."""
        total = 0
        for worker in self.workers:
            while worker.lag:
                total += worker.sync().records
        return total

    def checkpoint(self) -> None:
        """Checkpoint every worker's shard at its committed cut."""
        for worker in self.workers:
            worker.checkpoint()

    def status(self) -> list[ShardStatus]:
        """Live per-worker status, dead workers included.

        A worker whose consumer is closed or abandoned -- it died
        somewhere between applying records, committing and
        checkpointing -- must show up *lagging* (its group's registered
        offsets against the feed end), never silently absent or
        caught-up-at-zero: an operator reading this view decides what
        to restart from it.
        """
        self.feed.refresh()
        ends = self.feed.end_offsets()
        registered = self.feed.recovery_points()
        rows: list[ShardStatus] = []
        for worker in self.workers:
            alive = not worker._consumer.closed
            if alive:
                lag = worker.lag
                committed = worker._consumer.committed
            else:
                point = registered.get(worker.group)
                committed = dict(point.committed) if point else {}
                topics = point.topics if point else worker.topics
                lag = sum(
                    max(end - committed.get(name, 0), 0)
                    for name, end in ends.items()
                    if topics is None or name in topics
                )
            rows.append(
                ShardStatus(
                    index=worker.spec.index,
                    group=worker.group,
                    alive=alive,
                    ready=worker.ready,
                    lag=lag,
                    edges=len(worker.graph.edges) if worker.ready else 0,
                    owned=worker.spec.owned,
                    committed=committed,
                )
            )
        return rows

    def restart(self, index: int) -> ShardWorker:
        """Kill one worker and re-attach it from its durable state.

        The old worker's consumer is *abandoned*, not closed: its group
        registration -- committed offsets, subscription, retention
        floor -- survives exactly as if the process had been killed, so
        if the re-attach itself fails the group still shows up lagging
        in :meth:`status` and the ``.feed`` view instead of vanishing.
        (In-memory feeds have no registration to resume from; there the
        old consumer deregisters and the fresh worker replays from the
        beginning, as before.)  The fresh worker bootstraps from the
        group's snapshot / committed cut and resumes.  Returns the
        replacement.
        """
        old = self.workers[index]
        if self.feed.durable:
            old._consumer.abandon()
        else:
            old._consumer.close()
        self.workers[index] = ShardWorker(
            self.feed,
            self.plan.shards[index],
            self.plan,
            group=old.group,
            snapshots=self._snapshots,
            checkpoint_records=self._checkpoint_records,
        )
        return self.workers[index]

    # ------------------------------------------------------------- handoff

    def handoff(
        self,
        topic: str,
        to: int,
        on_step: Optional[Callable[[str], None]] = None,
    ) -> ShardPlan:
        """Move ``topic``'s ownership to worker ``to``, live.

        The five-step protocol (each step leaves a recoverable state;
        ``on_step`` is called after each with its name -- the chaos
        suite's hook for killing the pipeline mid-handoff):

        1. ``released`` -- the owning worker checkpoints the topic into
           a transfer packet at its committed cut (it keeps serving).
        2. ``granted``  -- the coordinator commits the new ownership
           (here: the plan swap; the process executor persists it).
        3. ``adopted``  -- workers gaining topics resubscribe: restore
           the packet at the cut, pin their floors, re-detect,
           checkpoint.
        4. ``pruned``   -- workers losing topics resubscribe away,
           releasing rows and retention holds.
        5. ``cleared``  -- the transfer packets are deleted.

        Constraints follow their anchor relations: the new plan is
        recomputed with the full ownership map pinned, so cross-shard
        flags, foreign subscriptions and each worker's constraint slice
        all move consistently.  Returns the new plan.

        Raises:
            ConstraintError: for an unknown topic or worker index.
        """
        name = str(topic).lower()
        if name not in self.plan.topic_owner:
            raise ConstraintError(f"unknown topic {name!r}")
        if not 0 <= to < len(self.workers):
            raise ConstraintError(
                f"worker {to} out of range (plan has"
                f" {len(self.workers)} workers)"
            )
        if self.plan.topic_owner[name] == to:
            return self.plan
        assignment = dict(self.plan.topic_owner)
        assignment[name] = to
        new_plan = plan_assignment(
            self.constraints, len(self.workers), assignment=assignment
        )
        self._transition(new_plan, on_step or (lambda step: None))
        return self.plan

    def rebalance(
        self,
        threshold: int = 0,
        on_step: Optional[Callable[[str], None]] = None,
    ) -> Optional[RebalanceMove]:
        """Trigger at most one ownership move when per-worker load skew
        (pending records over owned topics, plus hypergraph edge
        counts) exceeds ``threshold``.  Returns the move made, or None
        when the shards are balanced (see :func:`choose_move`)."""
        self.feed.refresh()
        ends = self.feed.end_offsets()
        committed = [worker._consumer.committed for worker in self.workers]
        edges = [
            len(worker.graph.edges) if worker.ready else 0
            for worker in self.workers
        ]
        move = choose_move(
            self.plan, committed, ends, threshold=threshold, edges=edges
        )
        if move is None:
            return None
        self.handoff(move.topic, move.target, on_step=on_step)
        return move

    def _transition(
        self, new_plan: ShardPlan, on_step: Callable[[str], None]
    ) -> None:
        """Drive every worker from the current plan to ``new_plan``
        through the handoff protocol (see :meth:`handoff`)."""
        old_plan = self.plan
        count = len(self.workers)
        old_subs = [
            frozenset(worker.topics or ()) for worker in self.workers
        ]
        new_subs = [
            frozenset(
                {str(t).lower() for t in spec.subscribed} | {SCHEMA_TOPIC}
            )
            for spec in new_plan.shards
        ]
        needed: set[str] = set()
        for index in range(count):
            needed |= new_subs[index] - old_subs[index]
        needed.discard(SCHEMA_TOPIC)
        # 1) Release: every topic someone must acquire gets a transfer
        #    packet from the worker currently serving it as owner.
        for name in sorted(needed):
            exporter = old_plan.topic_owner.get(name)
            if exporter is not None and name in old_subs[exporter]:
                self.workers[exporter].export_topic(name)
        on_step("released")
        # 2) Grant: the plan swap is the in-process ownership commit.
        self.plan = new_plan
        on_step("granted")
        # 3) Adopt before 4) prune: an adopter's registration pins its
        #    new topics at their cuts before any releaser lets go, so
        #    the retention floor never gaps (the packets cover the
        #    window in between anyway).
        adopters = [
            index for index in range(count) if new_subs[index] - old_subs[index]
        ]
        for index in adopters:
            self.workers[index].reshape(new_plan.shards[index], new_plan)
        on_step("adopted")
        for index in range(count):
            if index not in adopters and (
                new_subs[index] != old_subs[index]
                or new_plan.shards[index] != old_plan.shards[index]
            ):
                self.workers[index].reshape(new_plan.shards[index], new_plan)
        on_step("pruned")
        # 5) The adopters checkpointed past their cuts; the packets no
        #    longer pin anything anyone needs.
        for name in sorted(needed):
            self.feed.clear_transfer(name)
        on_step("cleared")

    # ------------------------------------------------------------ querying

    def database(self) -> Database:
        """Assemble one full database from the workers' owned slices.

        Each worker is authoritative for the rows of its *owned* topics
        (foreign subscriptions are read-only copies), so restoring each
        owned slice into one target -- schemas merged, rows disjoint,
        tids preserved -- reproduces the primary at the aligned cut.
        Call after :meth:`drain`.
        """
        db = Database()
        for worker in self.workers:
            restore_database(
                db,
                snapshot_database(worker.db, tables=worker.spec.owned),
                merge=True,
            )
        return db

    def engine(self, **kwargs: object) -> HippoEngine:
        """A :class:`~repro.core.hippo.HippoEngine` answering from the
        shards: the assembled database plus the merged hypergraph
        (handed over as precomputed detection, so the engine never
        re-detects).  Consistent-query answering then runs the paper's
        pipeline transparently over shard state."""
        from repro.core.hippo import HippoEngine

        return HippoEngine(
            self.database(), self.constraints, hypergraph=self.graph, **kwargs
        )

    def close(self) -> None:
        """Close every worker (checkpointing durable shards); the feed
        stays open -- the caller owns it."""
        for worker in self.workers:
            worker.close()
