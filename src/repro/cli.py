"""An interactive frontend for Hippo (the demo experience).

The original system was demonstrated live: load data, declare integrity
constraints, and compare consistent answers against naive evaluation.
This module provides that loop for scripts, pipes and terminals::

    $ python -m repro.cli
    hippo> CREATE TABLE emp (name TEXT, salary INTEGER);
    hippo> INSERT INTO emp VALUES ('ann', 10), ('ann', 20), ('bob', 5);
    hippo> .constraint FD emp: name -> salary
    hippo> .consistent SELECT * FROM emp;
    ('bob', 5)
    (1 consistent answer; 3 candidates, 1 via core)

Meta-commands (everything else is executed as SQL):

=====================  ====================================================
``.constraint SPEC``   add a constraint (KEY / FD / EXCLUSION / DENIAL)
``.constraints``       list the active constraints
``.detect``            apply pending deltas (or detect), print hypergraph stats
``.conflicts``         per-constraint stored / subsumed counts + detection mode
``.feed``              change-feed topics, offsets, per-consumer lag and
                       recovery points (snapshot floor, else committed)
``.feed tail DIR [S]`` live-tail another process's durable feed for S seconds
``.feed tail DIR S K/N``  tail only shard K of an N-way constraint-aware plan
``.feed compact``      reclaim consumed feed segments (truncate + rewrite)
``.shards [N]``        the constraint-aware N-way shard plan (default 2)
``.shards --live [DIR]``  the *persisted* ownership manifest of a process
                       executor on DIR: owners, epoch, per-worker lag,
                       pending transfer packets
``.rebalance [DIR] [N]``  dry-run rebalance advisor: the topic move
                       ``choose_move`` would make from live lag skew
``.checkpoint``        store a writer recovery snapshot (durable shells)
``.consistent SQL``    consistent answers to a query
``.possible SQL``      possible answers (true in some repair)
``.cleaned SQL``       evaluate over the conflict-free sub-database
``.raw SQL``           evaluate ignoring inconsistency
``.rewrite SQL``       show the PODS'99 rewritten SQL and its answers
``.classify SQL``      which CQA path applies (rewriting vs. hypergraph)
``.backend [NAME]``    show or switch the execution backend (native /
                       sqlite / duckdb); pushdown falls back to native
``.explain SQL``       show the envelope query handed to the RDBMS
                       (parameterized, with its bound arguments)
``.why SQL ; TUPLE``   explain why a tuple is / is not consistent
``.repairs``           exact repair count (component factorization)
``.stats``             execution counters + statement/plan cache
                       hits, misses and invalidations
``.help`` / ``.quit``  the obvious
=====================  ====================================================
"""

from __future__ import annotations

import sys
from typing import IO, Iterable, Optional

from repro.backends import Backend, available_backends, create_backend
from repro.constraints.parser import parse_constraint
from repro.core.hippo import AnswerSet, HippoEngine
from repro.engine.database import Database
from repro.engine.types import format_value, literal_sql
from repro.errors import ReproError
from repro.ra import CatalogSchemaProvider, render_tree
from repro.repairs import TooManyRepairsError, count_repairs_exact
from repro.rewriting import RewritingEngine, classify


class HippoShell:
    """State + command dispatch for the interactive frontend.

    With ``durable`` the shell's database appends every mutation to a
    crash-safe change feed under that directory (and restores from it
    when the directory already holds one) -- which is what another
    process's ``.feed tail`` follows live.
    """

    PROMPT = "hippo> "

    def __init__(
        self, out: Optional[IO[str]] = None, durable: Optional[str] = None
    ) -> None:
        self.db = Database(durable=durable)
        self.constraints: list = []
        self._engine: Optional[HippoEngine] = None
        self._backend: Optional[Backend] = None
        self._out = out if out is not None else sys.stdout
        self._buffer: list[str] = []

    # -------------------------------------------------------------- helpers

    def _print(self, text: str = "") -> None:
        self._out.write(text + "\n")

    def _hippo(self) -> HippoEngine:
        """The engine, (re)building conflict detection when stale.

        Plain DML does **not** invalidate the engine: it consumes the
        database change log and maintains its conflict hypergraph
        incrementally.  Only DDL and constraint changes rebuild it.
        """
        if self._engine is None:
            self._engine = HippoEngine(
                self.db,
                self.constraints,
                group="hippo-cli",
                backend=self._backend,
            )
        return self._engine

    def _invalidate(self) -> None:
        if self._engine is not None:
            self._engine.detach()
        self._engine = None

    def _print_answers(self, answers: AnswerSet, label: str) -> None:
        for row in answers.rows:
            self._print("  " + "(" + ", ".join(format_value(v) for v in row) + ")")
        extras = ""
        if "candidates" in answers.stats:
            extras = (
                f"; {answers.stats['candidates']} candidates"
                f", {answers.stats.get('skipped_by_core', 0)} via core"
            )
        plural = "" if len(answers.rows) == 1 else "s"
        self._print(f"({len(answers.rows)} {label}{plural}{extras})")

    # ------------------------------------------------------------- commands

    def handle(self, line: str) -> bool:
        """Process one input line; returns False to stop the loop.

        SQL statements may span multiple lines: input accumulates until a
        line ends with ``;``.  Meta-commands are single-line and only
        recognized while no statement is pending.
        """
        stripped = line.strip()
        if not self._buffer and (not stripped or stripped.startswith("--")):
            return True
        try:
            if not self._buffer and stripped.startswith("."):
                return self._meta(stripped)
            self._buffer.append(line)
            if stripped.endswith(";"):
                self.flush()
        except ReproError as exc:
            self._print(f"error: {exc}")
        except TooManyRepairsError as exc:
            self._print(f"error: {exc}")
        return True

    def flush(self) -> None:
        """Execute any pending (possibly multi-line) SQL input."""
        if not self._buffer:
            return
        text = "\n".join(self._buffer)
        self._buffer = []
        self._sql(text)

    def _sql(self, text: str) -> None:
        from repro.sql import ast as sql_ast
        from repro.sql.parser import parse_script

        ddl = False
        try:
            statements = parse_script(text)
            for statement in statements:
                ddl = ddl or isinstance(
                    statement, (sql_ast.CreateTable, sql_ast.DropTable)
                )
                if len(statements) == 1 and isinstance(
                    statement, sql_ast.SelectStatement
                ):
                    # Single SELECTs go through the text-keyed statement
                    # cache: a repeated query skips parse + plan.
                    result = self.db.execute(text)
                else:
                    result = self.db.execute_statement(statement)
                if result.columns:
                    self._print("  ".join(result.columns))
                    for row in result.rows:
                        self._print("  ".join(format_value(v) for v in row))
                    self._print(f"({result.rowcount} rows)")
                else:
                    self._print(f"ok ({result.rowcount} rows affected)")
        finally:
            if ddl:
                # Schema changes rebuild the engine; plain DML flows
                # through the change log into incremental maintenance.
                self._invalidate()
            # A durable shell makes every acknowledged statement visible
            # (and crash-safe) immediately -- even when a later statement
            # in the batch fails: buffered appends are useless to a
            # concurrent `.feed tail`, and a killed shell must not lose
            # acknowledged statements.  No-op for in-memory feeds.
            self.db.changes.feed.flush()

    def _meta(self, line: str) -> bool:
        command, _, argument = line.partition(" ")
        argument = argument.strip().rstrip(";")
        if command in (".quit", ".exit"):
            return False
        if command == ".help":
            self._print(__doc__ or "")
            return True
        if command == ".constraint":
            provider = CatalogSchemaProvider(self.db.catalog)
            self.constraints.append(parse_constraint(argument, provider))
            self._invalidate()
            self._print(f"added: {self.constraints[-1]}")
            return True
        if command == ".constraints":
            if not self.constraints:
                self._print("(no constraints)")
            for constraint in self.constraints:
                self._print(f"  {constraint}")
            return True
        if command == ".detect":
            engine = self._hippo()
            engine.refresh()
            report = engine.detection
            summary = engine.hypergraph.summary()
            extra = ""
            if report.mode == "incremental":
                extra = (
                    f"; {report.deltas} deltas,"
                    f" +{report.edges_added}/-{report.edges_retracted} edges"
                )
            self._print(
                f"conflict hypergraph: {summary['edges']} edges,"
                f" {summary['conflicting_tuples']} conflicting tuples"
                f" (detection {report.seconds * 1e3:.1f} ms,"
                f" mode {report.mode}{extra})"
            )
            return True
        if command == ".conflicts":
            engine = self._hippo()
            engine.refresh()
            report = engine.detection
            line = f"detection mode: {report.mode}"
            if report.mode == "incremental":
                line += (
                    f" ({report.deltas} deltas applied;"
                    f" +{report.edges_added} edges,"
                    f" -{report.edges_retracted} retracted)"
                )
            self._print(line)
            if not report.per_constraint:
                self._print("(no constraints)")
            for name in report.per_constraint:
                subsumed = report.subsumed.get(name, 0)
                note = f" ({subsumed} subsumed)" if subsumed else ""
                self._print(
                    f"  {name}: {report.per_constraint[name]} stored{note}"
                )
            return True
        if command == ".checkpoint":
            cut = self.db.checkpoint()
            positions = ", ".join(
                f"{name}={offset}" for name, offset in sorted(cut.items())
            )
            self._print(
                "checkpoint stored"
                + (f" (committed {positions})" if positions else " (empty)")
            )
            return True
        if command == ".feed":
            if argument.split(maxsplit=1)[:1] == ["tail"]:
                return self._feed_tail(argument.split()[1:])
            if argument == "compact":
                return self._feed_compact()
            feed = self.db.changes.feed
            where = (
                f"durable at {feed.directory}" if feed.durable else "in-memory"
            )
            self._print(
                f"change feed: {where}"
                f" ({self.db.changes.end} records,"
                f" schema version {feed.schema_version})"
            )
            topics = feed.topics()
            if not topics:
                self._print("  (no topics)")
            for topic in topics:
                segments = (
                    f", {topic.segments} segments" if feed.durable else ""
                )
                self._print(
                    f"  topic {topic.name}: offsets"
                    f" [{topic.start}..{topic.end}){segments}"
                )
            recovery = feed.recovery_points()
            attached = feed.groups()
            for group_name in sorted(set(attached) | set(recovery)):
                committed = attached.get(group_name)
                point = recovery.get(group_name)
                if committed is None:  # registered on disk only
                    committed = point.committed if point else {}
                lag = sum(
                    max(topic.end - committed.get(topic.name, 0), 0)
                    for topic in topics
                    if point is None
                    or point.topics is None
                    or topic.name in point.topics
                )
                positions = ", ".join(
                    f"{name}={offset}"
                    for name, offset in sorted(committed.items())
                )
                line = f"  consumer {group_name}: lag {lag}" + (
                    f" (committed {positions})" if positions else ""
                )
                if point is not None and point.topics is not None:
                    line += f" [topics {', '.join(sorted(point.topics))}]"
                self._print(line)
                # The group's *recovery point* is what pins retention:
                # the snapshot floor when it stored one, else its
                # committed offsets.
                if point is not None:
                    floor = ", ".join(
                        f"{name}={offset}"
                        for name, offset in sorted(point.floor.items())
                    )
                    self._print(
                        f"    recovery point: {point.source}"
                        + (f" ({floor})" if floor else " (start)")
                    )
            return True
        if command == ".shards":
            return self._shards(argument)
        if command == ".rebalance":
            return self._rebalance(argument)
        if command == ".consistent":
            self._print_answers(
                self._hippo().consistent_answers(argument), "consistent answer"
            )
            return True
        if command == ".possible":
            self._print_answers(
                self._hippo().possible_answers(argument), "possible answer"
            )
            return True
        if command == ".cleaned":
            self._print_answers(self._hippo().cleaned_answers(argument), "row")
            return True
        if command == ".raw":
            self._print_answers(self._hippo().raw_answers(argument), "row")
            return True
        if command == ".rewrite":
            rewriting = RewritingEngine(self.db, self.constraints)
            self._print(rewriting.rewrite_sql(argument))
            self._print_answers(
                rewriting.consistent_answers(argument, backend=self._backend),
                "answer",
            )
            return True
        if command == ".backend":
            if not argument:
                self._print(f"backend: {self.db.backend_id}")
                self._print("available: " + ", ".join(available_backends()))
                return True
            backend = create_backend(argument, self.db)
            if backend.capabilities.pushes_sql:
                self.db.attach_backend(backend)
                self._backend = backend
            else:
                self.db.detach_backend()
                self._backend = None
            self._invalidate()
            self._print(f"backend: {backend.name}")
            return True
        if command == ".classify":
            result = classify(argument, self.constraints, schema=self.db)
            # Classification decides how later statements are evaluated
            # (rewriting vs hypergraph); drop cached plans so an execute
            # of the same text observes a fresh plan under that decision.
            self.db.invalidate_plans()
            self._print(result.describe())
            return True
        if command == ".stats":
            counters = self.db.stats.snapshot()
            cache = self.db.plan_cache.snapshot()
            self._print("execution:")
            for name in (
                "statements",
                "rows_scanned",
                "point_lookups",
                "subquery_evaluations",
                "subquery_cache_hits",
                "backend_pushdowns",
                "backend_fallbacks",
            ):
                self._print(f"  {name}: {counters[name]}")
            self._print(
                "plan cache"
                + (" (disabled):" if not self.db.plan_cache.enabled else ":")
            )
            for name in ("entries", "hits", "misses", "invalidations"):
                self._print(f"  {name}: {cache[name]}")
            return True
        if command == ".explain":
            tree, _ = self._hippo().parse(argument)
            rendered = render_tree(tree)
            self._print("envelope: " + rendered.text)
            bound = ", ".join(literal_sql(v) for v in rendered.params)
            self._print("bound arguments: " + (bound or "(none)"))
            return True
        if command == ".why":
            query_text, _, tuple_text = argument.partition(";")
            candidate = tuple(
                _parse_cli_value(part) for part in tuple_text.split(",")
            )
            report = self._hippo().explain_candidate(query_text.strip(), candidate)
            verdict = "consistent" if report["consistent"] else (
                "possible but not consistent"
                if report["possible"]
                else "not even possible"
            )
            self._print(f"{report['candidate']}: {verdict}")
            self._print(f"  depends on facts: {', '.join(report['facts'])}")
            if "falsifying_repair_excludes" in report:
                self._print(
                    "  a repair excluding"
                    f" {{{', '.join(report['falsifying_repair_excludes'])}}}"
                    + (
                        " and containing"
                        f" {{{', '.join(report['falsifying_repair_requires'])}}}"
                        if report["falsifying_repair_requires"]
                        else ""
                    )
                    + " falsifies the query"
                )
            return True
        if command == ".repairs":
            engine = self._hippo()
            engine.refresh()
            count = count_repairs_exact(engine.hypergraph)
            self._print(
                f"{count.total} repairs"
                f" ({count.components} conflict components;"
                f" factor sizes {list(count.component_counts)[:10]}...)"
                if count.components > 10
                else f"{count.total} repairs"
                f" ({count.components} conflict components;"
                f" factors {list(count.component_counts)})"
            )
            return True
        self._print(f"unknown command {command!r}; try .help")
        return True

    def _shards(self, argument: str) -> bool:
        """``.shards [N]`` / ``.shards --live [DIR]``.

        Without ``--live``, computes the N-way topic assignment
        (:func:`repro.conflicts.shard.plan_assignment`) over the
        shell's current constraints and tables: which worker owns which
        topics, which constraints each evaluates, and which constraints
        are cross-shard (owned by their anchor's worker, which also
        subscribes to the foreign topics).

        With ``--live``, reads the *persisted* state of a process
        executor on ``DIR`` (default: this shell's durable feed):
        the ownership manifest (``shards.json``), each worker group's
        registered lag against the feed ends, and any pending transfer
        packets from an in-flight handoff.
        """
        from repro.conflicts.shard import plan_assignment

        tokens = argument.split()
        if tokens[:1] == ["--live"]:
            return self._shards_live(tokens[1:])
        try:
            workers = int(argument) if argument else 2
        except ValueError:
            self._print("usage: .shards [WORKERS] | .shards --live [DIR]")
            return True
        relations = [name.lower() for name in self.db.catalog.table_names()]
        plan = plan_assignment(
            self.constraints, workers, relations=relations
        )
        cross = plan.cross_shard
        self._print(
            f"shard plan: {workers} workers over"
            f" {len(plan.topic_owner)} topics,"
            f" {len(self.constraints)} constraints"
            f" ({len(cross)} cross-shard)"
        )
        for spec in plan.shards:
            owned = ", ".join(spec.owned) if spec.owned else "-"
            line = f"  worker {spec.index}: owns [{owned}]"
            if spec.foreign:
                line += f" + foreign [{', '.join(spec.foreign)}]"
            self._print(line)
            for constraint in spec.constraints:
                label = str(constraint)
                marker = " [cross-shard]" if label in spec.cross_shard else ""
                self._print(f"    {label}{marker}")
        return True

    def _shards_live(self, args: list[str]) -> bool:
        """``.shards --live [DIR]``: a process executor's durable state.

        Reads the ownership manifest (``shards.json``), each worker
        group's registered lag against the feed ends, and any pending
        transfer packets -- all without attaching workers, so it is
        safe to run against a live executor from another process.  A
        worker that died between checkpoint and commit still shows here
        as *lagging*: its group registration (and so its retention
        floor) survives the crash.
        """
        from repro.conflicts.executor import OWNERSHIP_FILE, load_ownership
        from repro.engine.feed import ChangeFeed

        own = self.db.changes.feed
        if args:
            directory = args[0]
        elif own.durable:
            directory = str(own.directory)
        else:
            self._print(
                "usage: .shards --live DIRECTORY"
                " (this shell's feed is in-memory)"
            )
            return True
        try:
            ownership = load_ownership(directory)
        except ReproError as error:
            self._print(f"error: {error}")
            return True
        if ownership is None:
            self._print(
                f"no ownership manifest ({OWNERSHIP_FILE}) in {directory}"
            )
            return True
        foreign = not (own.durable and str(own.directory) == str(directory))
        feed = ChangeFeed(directory) if foreign else own
        try:
            self._print(
                f"process executor: {ownership.workers} workers,"
                f" epoch {ownership.epoch} ({directory})"
            )
            for name in sorted(ownership.owner):
                self._print(f"  topic {name} -> worker {ownership.owner[name]}")
            ends = feed.end_offsets()
            recovery = feed.recovery_points()
            for index in range(ownership.workers):
                groups = [
                    g for g in sorted(recovery) if g.endswith(f"-{index}")
                ]
                for group_name in groups:
                    point = recovery[group_name]
                    lag = sum(
                        max(end - point.committed.get(name, 0), 0)
                        for name, end in ends.items()
                        if point.topics is None or name in point.topics
                    )
                    owned = sorted(
                        t for t, w in ownership.owner.items() if w == index
                    )
                    self._print(
                        f"  worker {index} ({group_name}):"
                        f" lag {lag}, owns [{', '.join(owned) or '-'}],"
                        f" recovery {point.source}"
                    )
            for name, cut in sorted(feed.transfers().items()):
                self._print(
                    f"  transfer packet {name} @ {cut}"
                    " (handoff in flight; pins retention)"
                )
        finally:
            if foreign:
                feed.close()
        return True

    def _rebalance(self, argument: str) -> bool:
        """``.rebalance [DIR] [WORKERS]``: dry-run rebalance advisor.

        Computes the single topic move
        :func:`repro.conflicts.shard.choose_move` would make from the
        registered per-worker lag skew -- the same pure chooser the
        in-process coordinator and the process executor call, so the
        advice here is exactly the move a live ``rebalance()`` would
        perform.  With ``DIR``, reads that executor's manifest and
        feed; otherwise uses this shell's durable feed.  Constraints
        come from the shell (declare them first for a faithful plan).
        Nothing is moved: this only prints the advice.
        """
        from repro.conflicts.executor import load_ownership
        from repro.conflicts.shard import choose_move, plan_assignment
        from repro.engine.feed import SCHEMA_TOPIC, ChangeFeed

        directory: Optional[str] = None
        workers: Optional[int] = None
        for token in argument.split():
            if token.isdigit():
                workers = int(token)
            else:
                directory = token
        own = self.db.changes.feed
        if directory is None:
            if not own.durable:
                self._print(
                    "usage: .rebalance DIRECTORY [WORKERS]"
                    " (this shell's feed is in-memory)"
                )
                return True
            directory = str(own.directory)
        foreign = not (own.durable and str(own.directory) == str(directory))
        try:
            ownership = load_ownership(directory)
        except ReproError as error:
            self._print(f"error: {error}")
            return True
        feed = ChangeFeed(directory) if foreign else own
        try:
            if workers is None:
                workers = ownership.workers if ownership else 2
            assignment = dict(ownership.owner) if ownership else None
            relations = [
                t.name for t in feed.topics() if t.name != SCHEMA_TOPIC
            ]
            plan = plan_assignment(
                self.constraints,
                workers,
                relations=relations,
                assignment=assignment,
            )
            ends = feed.end_offsets()
            recovery = feed.recovery_points()
            committed: list[dict[str, int]] = []
            for index in range(workers):
                merged: dict[str, int] = {}
                for group_name in sorted(recovery):
                    if group_name.endswith(f"-{index}"):
                        merged.update(recovery[group_name].committed)
                committed.append(merged)
            move = choose_move(plan, committed, ends)
            if move is None:
                self._print(
                    f"balanced: no single move improves the skew"
                    f" ({workers} workers, {len(plan.topic_owner)} topics)"
                )
            else:
                self._print(
                    f"advice: move topic {move.topic}"
                    f" from worker {move.source} to worker {move.target}"
                    f" (skew {move.skew_before} -> {move.skew_after})"
                )
                self._print(
                    "  (dry run -- a live executor applies it via"
                    " rebalance())"
                )
        finally:
            if foreign:
                feed.close()
        return True

    def _feed_compact(self) -> bool:
        """``.feed compact``: reclaim consumed segments on demand.

        Runs segment compaction regardless of the feed's configured
        retention policy: sealed segments every recovery participant has
        passed are deleted, and the oldest partially-consumed sealed
        segment is rewritten down to its surviving records.  The shell's
        own writer registration caps what can be reclaimed -- run
        ``.checkpoint`` first to move it.
        """
        feed = self.db.changes.feed
        if not feed.durable:
            self._print(
                "error: compaction needs a durable feed"
                " (start the shell with --durable DIR)"
            )
            return True
        reclaimed = feed.compact()
        if not reclaimed:
            self._print("(nothing to reclaim)")
            return True
        for name, base in sorted(reclaimed.items()):
            self._print(f"  topic {name}: reclaimed below offset {base}")
        return True

    def _feed_tail(self, arguments: list[str]) -> bool:
        """``.feed tail DIR [SECONDS] [K/N]``: live-follow a durable feed.

        Attaches a :class:`~repro.conflicts.replica.ReplicaHypergraph`
        (under the shell's current constraints) to the feed directory
        as a *reader* instance and follows it for the given wall-clock
        budget (default 1 second), printing each non-empty sync.  With
        ``K/N`` the tail follows only shard ``K`` of an N-way
        constraint-aware plan over the feed's topics: the shard's topic
        subset and constraint slice, exactly what the corresponding
        :class:`~repro.conflicts.shard.ShardWorker` would consume.  The
        follower leaves no state behind: its consumer group (named per
        process, so concurrent tails cannot collide) is dropped on
        exit.
        """
        import os
        from pathlib import Path

        from repro.conflicts.replica import ReplicaHypergraph, ReplicaSync
        from repro.conflicts.shard import plan_assignment
        from repro.engine.feed import MANIFEST, SCHEMA_TOPIC, ChangeFeed

        usage = "usage: .feed tail DIRECTORY [SECONDS] [SHARD/WORKERS]"
        if not arguments:
            self._print(usage)
            return True
        directory = arguments[0]
        try:
            seconds = float(arguments[1]) if len(arguments) > 1 else 1.0
        except ValueError:
            self._print(usage)
            return True
        shard = None
        if len(arguments) > 2:
            try:
                index, _, count = arguments[2].partition("/")
                shard = (int(index), int(count))
            except ValueError:
                self._print(usage)
                return True
            if not 0 <= shard[0] < shard[1]:
                self._print(usage)
                return True
        # A read-only tail must not fabricate a feed out of a typo'd
        # path (ChangeFeed would happily mkdir an empty one).
        if not (Path(directory) / MANIFEST).exists():
            self._print(f"error: no change feed at {directory}")
            return True
        feed = ChangeFeed(directory)
        group = f"cli-tail-{os.getpid()}"
        constraints = self.constraints
        topics = None
        referenced: tuple = ()
        if shard is not None:
            relations = [
                t.name for t in feed.topics() if t.name != SCHEMA_TOPIC
            ]
            plan = plan_assignment(
                constraints, shard[1], relations=relations
            )
            spec = plan.shards[shard[0]]
            constraints = list(spec.constraints)
            topics = spec.subscribed
            referenced = tuple(plan.referenced)
            self._print(
                f"shard {shard[0]}/{shard[1]}: topics"
                f" [{', '.join(spec.owned) or '-'}]"
                + (
                    f" + foreign [{', '.join(spec.foreign)}]"
                    if spec.foreign
                    else ""
                )
            )
        try:
            replica = ReplicaHypergraph(
                feed,
                constraints,
                group=group,
                snapshots=False,
                topics=topics,
                extra_referenced=referenced,
            )

            def on_sync(sync: ReplicaSync) -> None:
                self._print(
                    f"  sync: {sync.records} records"
                    f" ({sync.mode}), lag {sync.lag}"
                )

            summary = replica.follow(
                poll_interval=min(0.05, seconds),
                max_seconds=seconds,
                on_sync=on_sync,
            )
            if replica.ready:
                stats = replica.graph.summary()
                self._print(
                    f"tailed {summary.records} records in"
                    f" {summary.syncs} syncs ({summary.seconds:.2f}s);"
                    f" hypergraph: {stats['edges']} edges,"
                    f" {stats['conflicting_tuples']} conflicting tuples"
                )
            else:
                self._print(
                    f"tailed {summary.records} records in"
                    f" {summary.syncs} syncs ({summary.seconds:.2f}s);"
                    " detection deferred (constraint tables not"
                    " replicated yet)"
                )
            replica.close()
        finally:
            # An inspection tail must not pin the feed's retention.
            feed.drop_group(group)
            feed.close()
        return True

    # ----------------------------------------------------------------- loop

    def run(self, lines: Iterable[str], interactive: bool = False) -> None:
        """Drive the shell over an iterable of input lines."""
        for line in lines:
            if interactive:
                pass  # prompt handled by caller
            if not self.handle(line):
                return
        try:
            self.flush()  # a trailing statement without ';' still runs
        except (ReproError, TooManyRepairsError) as exc:
            self._print(f"error: {exc}")


def _parse_cli_value(text: str) -> object:
    """Parse a .why tuple component: int, float, NULL or bare string."""
    stripped = text.strip()
    if stripped.upper() == "NULL":
        return None
    if stripped.startswith("'") and stripped.endswith("'"):
        return stripped[1:-1]
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        return stripped


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point: reads from the files given in argv, else stdin.

    ``--durable DIR`` opens the shell on a durable database: mutations
    append to the change feed under DIR, an existing DIR is restored by
    replay, and other processes can ``.feed tail DIR`` it live.
    """
    arguments = list(argv if argv is not None else sys.argv[1:])
    durable: Optional[str] = None
    if "--durable" in arguments:
        flag = arguments.index("--durable")
        try:
            durable = arguments[flag + 1]
        except IndexError:
            print("error: --durable needs a directory", file=sys.stderr)
            return 2
        del arguments[flag : flag + 2]
    shell = HippoShell(durable=durable)
    try:
        if arguments:
            for path in arguments:
                with open(path, encoding="utf-8") as handle:
                    shell.run(handle)
            return 0
        if sys.stdin.isatty():  # pragma: no cover - interactive only
            print("Hippo consistent-query-answering shell; .help for commands")
            while True:
                try:
                    line = input(HippoShell.PROMPT)
                except (EOFError, KeyboardInterrupt):
                    print()
                    return 0
                if not shell.handle(line):
                    return 0
        shell.run(sys.stdin)
        return 0
    finally:
        shell.db.changes.feed.close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
