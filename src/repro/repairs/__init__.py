"""Repair enumeration and checking (ground-truth oracles)."""

from repro.repairs.checker import (
    ground_truth_consistent_answers,
    is_repair,
    satisfies_constraints,
)
from repro.repairs.counting import (
    RepairCount,
    conflict_components,
    count_repairs_exact,
)
from repro.repairs.enumerate import (
    Repair,
    TooManyRepairsError,
    all_repairs,
    count_repairs,
    maximal_independent_sets,
    repair_restriction,
)

__all__ = [
    "RepairCount",
    "conflict_components",
    "count_repairs_exact",
    "ground_truth_consistent_answers",
    "is_repair",
    "satisfies_constraints",
    "Repair",
    "TooManyRepairsError",
    "all_repairs",
    "count_repairs",
    "maximal_independent_sets",
    "repair_restriction",
]
