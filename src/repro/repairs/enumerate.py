"""Exhaustive repair enumeration (the ground-truth oracle).

For denial constraints, the repairs of a database are exactly the maximal
independent sets of the conflict hypergraph (Chomicki & Marcinkowski,
2005).  Their number can be exponential in the number of conflicting
tuples -- which is precisely why Hippo never materializes them -- but on
small instances enumerating them gives the definitional answer

    consistent(Q) = intersection over repairs M of Q(M)

that every Hippo answer is tested against.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.conflicts.hypergraph import ConflictHypergraph, Vertex
from repro.engine.database import Database

#: A repair, represented as the kept tids per (lower-cased) relation name.
Repair = dict[str, frozenset[int]]


class TooManyRepairsError(RuntimeError):
    """Raised when enumeration would exceed the configured bound."""


def maximal_independent_sets(
    hypergraph: ConflictHypergraph, limit: Optional[int] = None
) -> list[frozenset[Vertex]]:
    """All maximal independent sets of the conflict hypergraph.

    Only conflicting vertices matter (conflict-free tuples are in every
    repair); the returned sets contain conflicting vertices only.

    Branch-and-prune: pick a hyperedge still fully inside the candidate
    set and branch on which of its vertices to remove.  Duplicate and
    non-maximal results are filtered at the end -- fine for the test-size
    instances this oracle is meant for.

    Args:
        limit: safety bound on the number of *candidate* sets explored.

    Raises:
        TooManyRepairsError: when the bound is hit.
    """
    vertices = frozenset(hypergraph.conflicting_vertices())
    results: set[frozenset[Vertex]] = set()
    explored = 0

    def first_contained_edge(kept: set[Vertex]) -> Optional[frozenset[Vertex]]:
        for edge in hypergraph.edges:
            if edge <= kept:
                return edge
        return None

    def branch(kept: set[Vertex]) -> None:
        nonlocal explored
        explored += 1
        if limit is not None and explored > limit:
            raise TooManyRepairsError(
                f"more than {limit} candidate repairs explored"
            )
        edge = first_contained_edge(kept)
        if edge is None:
            results.add(frozenset(kept))
            return
        for v in edge:
            kept.discard(v)
            branch(kept)
            kept.add(v)

    branch(set(vertices))
    # Drop non-maximal sets (branching can produce them).
    by_size = sorted(results, key=len, reverse=True)
    maximal: list[frozenset[Vertex]] = []
    for candidate in by_size:
        if not any(candidate < bigger for bigger in maximal):
            maximal.append(candidate)
    return maximal


def all_repairs(
    db: Database,
    hypergraph: ConflictHypergraph,
    limit: Optional[int] = 200_000,
) -> list[Repair]:
    """Enumerate every repair as a per-relation kept-tid map.

    Each repair keeps all conflict-free tuples plus one maximal
    independent set of conflicting tuples.
    """
    relation_names = [name.lower() for name in db.catalog.table_names()]
    base: dict[str, set[int]] = {}
    for name in relation_names:
        table = db.catalog.table(name)
        conflicting = hypergraph.conflicting_tids(name)
        base[name] = {tid for tid in table.tids() if tid not in conflicting}

    repairs: list[Repair] = []
    for independent in maximal_independent_sets(hypergraph, limit):
        kept = {name: set(tids) for name, tids in base.items()}
        for v in independent:
            kept.setdefault(v.relation, set()).add(v.tid)
        repairs.append(
            {name: frozenset(tids) for name, tids in kept.items()}
        )
    return repairs


def repair_restriction(
    repair: Repair,
) -> Callable[[str], Optional[frozenset[int]]]:
    """Adapt a repair to the :data:`~repro.ra.compile.Restriction` protocol."""

    def restrict(relation: str) -> Optional[frozenset[int]]:
        return repair.get(relation.lower(), frozenset())

    return restrict


def count_repairs(db: Database, hypergraph: ConflictHypergraph) -> int:
    """The number of repairs (enumerated; exponential -- small inputs only)."""
    return len(all_repairs(db, hypergraph))
