"""Repair validity checks and ground-truth consistent answers."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.conflicts.detection import violations_of
from repro.conflicts.hypergraph import ConflictHypergraph, vertex
from repro.constraints.denial import to_denial_constraints
from repro.constraints.foreign_key import ForeignKeyConstraint
from repro.engine.database import Database
from repro.ra.compile import evaluate_tree
from repro.ra.sjud import SJUDTree
from repro.repairs.enumerate import Repair, all_repairs, repair_restriction


def satisfies_constraints(
    db: Database, constraints: Iterable[object], repair: Repair
) -> bool:
    """Whether the restricted instance satisfies every constraint.

    Implemented from first principles (re-running violation detection on
    the restriction), independent of the hypergraph, so tests can use it
    as an oracle against the hypergraph-based machinery.  Foreign keys
    are checked as inclusion dependencies over the kept tuples.
    """
    foreign_keys = [c for c in constraints if isinstance(c, ForeignKeyConstraint)]
    denials = to_denial_constraints(
        c for c in constraints if not isinstance(c, ForeignKeyConstraint)
    )
    for constraint in denials:
        for edge in violations_of(db, constraint):
            if all(v.tid in repair.get(v.relation, frozenset()) for v in edge):
                return False
    for fk in foreign_keys:
        child = db.catalog.table(fk.referencing)
        parent = db.catalog.table(fk.referenced)
        child_indexes = [child.schema.index_of(c) for c in fk.columns]
        parent_indexes = [parent.schema.index_of(c) for c in fk.ref_columns]
        kept_parent = repair.get(fk.referenced.lower(), frozenset())
        parent_keys = {
            tuple(row[i] for i in parent_indexes)
            for tid, row in parent.items()
            if tid in kept_parent
        }
        for tid, row in child.items():
            if tid not in repair.get(fk.referencing.lower(), frozenset()):
                continue
            key = tuple(row[i] for i in child_indexes)
            if not fk.match_nulls and any(part is None for part in key):
                continue
            if key not in parent_keys:
                return False
    return True


def is_repair(
    db: Database,
    constraints: Iterable[object],
    hypergraph: ConflictHypergraph,
    repair: Repair,
) -> bool:
    """Whether ``repair`` is consistent *and* maximal (a true repair)."""
    if not satisfies_constraints(db, constraints, repair):
        return False
    # Maximality: adding back any deleted tuple must create a violation,
    # i.e. some hyperedge must become fully contained.
    for name in db.catalog.table_names():
        key = name.lower()
        kept = repair.get(key, frozenset())
        table = db.catalog.table(name)
        kept_vertices = {
            vertex(rel, tid) for rel, tids in repair.items() for tid in tids
        }
        for tid in table.tids():
            if tid in kept:
                continue
            candidate = vertex(key, tid)
            restored = kept_vertices | {candidate}
            if hypergraph.is_independent(restored):
                return False
    return True


def ground_truth_consistent_answers(
    db: Database,
    hypergraph: ConflictHypergraph,
    tree: SJUDTree,
    limit: Optional[int] = 200_000,
) -> frozenset[tuple]:
    """Definitional consistent answers: intersect Q over every repair.

    Exponential in the number of conflicts; use on small instances only
    (this is the oracle Hippo is validated against, not part of the fast
    path).
    """
    repairs = all_repairs(db, hypergraph, limit)
    answers: Optional[frozenset[tuple]] = None
    for repair in repairs:
        rows = evaluate_tree(tree, db, repair_restriction(repair))
        answers = rows if answers is None else (answers & rows)
        if not answers:
            return frozenset()
    return answers if answers is not None else frozenset()
