"""Exact repair counting via conflict-component decomposition.

The paper's motivation: "even for a single functional dependency, the
number of repairs can be exponential in the number of tuples" (citing
Arenas et al., TCS 2003).  This module makes that number *inspectable*
without enumerating the repairs globally: the conflict hypergraph
decomposes into connected components, repairs factor across components,
so

    #repairs = product over components of #maximal-independent-sets

Components are tiny in realistic workloads (an FD conflict cluster of k
tuples is one k-clique), so the per-component enumeration is cheap even
when the global count is astronomically large.  Counting is #P-hard in
general, hence the per-component ``limit`` escape hatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.conflicts.hypergraph import ConflictHypergraph, Vertex
from repro.repairs.enumerate import maximal_independent_sets


@dataclass(frozen=True)
class RepairCount:
    """The exact repair count, with its factorization.

    Attributes:
        total: the number of repairs of the whole database.
        component_sizes: vertices per conflict component.
        component_counts: maximal-independent-set count per component.
    """

    total: int
    component_sizes: tuple[int, ...]
    component_counts: tuple[int, ...]

    @property
    def components(self) -> int:
        return len(self.component_sizes)


def conflict_components(hypergraph: ConflictHypergraph) -> list[frozenset[Vertex]]:
    """Connected components of the conflict hypergraph.

    Two tuples are connected when some hyperedge contains both.
    Conflict-free tuples belong to no component (they are in every
    repair and contribute a factor of 1).
    """
    parent: dict[Vertex, Vertex] = {}

    def find(v: Vertex) -> Vertex:
        root = v
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[v] != root:  # path compression
            parent[v], v = root, parent[v]
        return root

    for edge in hypergraph.edges:
        vertices = iter(edge)
        first = find(next(vertices))
        for other in vertices:
            parent[find(other)] = first

    groups: dict[Vertex, set[Vertex]] = {}
    for v in parent:
        groups.setdefault(find(v), set()).add(v)
    return [frozenset(group) for group in groups.values()]


def count_repairs_exact(
    hypergraph: ConflictHypergraph,
    limit_per_component: Optional[int] = 100_000,
) -> RepairCount:
    """Count the repairs exactly (product over conflict components).

    Raises:
        TooManyRepairsError: when a single component exceeds the limit --
            the count is then genuinely astronomical and the caller should
            report a bound instead.
    """
    components = sorted(conflict_components(hypergraph), key=len, reverse=True)
    sizes = []
    counts = []
    total = 1
    for component in components:
        # Restrict the hypergraph to this component's edges.
        local_edges = [
            edge for edge in hypergraph.edges if edge <= component
        ]
        local = ConflictHypergraph(local_edges)
        local_count = len(
            maximal_independent_sets(local, limit=limit_per_component)
        )
        sizes.append(len(component))
        counts.append(local_count)
        total *= local_count
    return RepairCount(total, tuple(sizes), tuple(counts))
