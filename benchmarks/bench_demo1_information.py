"""DEMO-1: CQA extracts more information than removing conflicting data.

Paper artifact: demonstration part 1.  The integration scenario's union
query is answered by (a) Hippo's consistent answers, (b) evaluation over
the cleaned database, (c) raw SQL.  The benchmark times each approach and
records the answer counts; the expected shape is

    |cleaned| < |consistent| <= |raw|      (information recovered)

with Hippo's runtime a small factor above the baselines.
"""

from __future__ import annotations

import pytest

from repro import HippoEngine
from repro.workloads import CITY_CERTAIN_QUERY, build_integration_scenario

from benchmarks.common import scaled

N_CUSTOMERS = scaled(2000, 200)
DISPUTED = 0.2


@pytest.fixture(scope="module")
def scenario():
    built = build_integration_scenario(N_CUSTOMERS, DISPUTED, seed=7)
    return built, HippoEngine(built.db, [built.fd])


@pytest.mark.benchmark(group="demo1-information")
def test_demo1_consistent_answers(benchmark, scenario):
    built, hippo = scenario
    answers = benchmark(lambda: hippo.consistent_answers(CITY_CERTAIN_QUERY))
    cleaned = hippo.cleaned_answers(CITY_CERTAIN_QUERY)
    raw = hippo.raw_answers(CITY_CERTAIN_QUERY)
    assert len(cleaned.rows) < len(answers.rows) <= len(raw.rows)
    benchmark.extra_info["consistent_answers"] = len(answers.rows)
    benchmark.extra_info["cleaned_answers"] = len(cleaned.rows)
    benchmark.extra_info["raw_answers"] = len(raw.rows)
    benchmark.extra_info["recovered_vs_cleaning"] = len(answers.rows) - len(
        cleaned.rows
    )


@pytest.mark.benchmark(group="demo1-information")
def test_demo1_cleaning_baseline(benchmark, scenario):
    _built, hippo = scenario
    benchmark(lambda: hippo.cleaned_answers(CITY_CERTAIN_QUERY))


@pytest.mark.benchmark(group="demo1-information")
def test_demo1_raw_sql_baseline(benchmark, scenario):
    _built, hippo = scenario
    benchmark(lambda: hippo.raw_answers(CITY_CERTAIN_QUERY))
