"""DEMO-3b: running time vs conflict percentage.

N fixed at 4000, conflict rate swept 0..30%.  Expected shape: raw SQL is
flat (it ignores conflicts); rewriting is roughly flat (it pays the
residue work for every tuple regardless); Hippo grows mildly with the
conflict rate (more candidates fall out of the certain core and reach the
Prover) but stays below rewriting.
"""

from __future__ import annotations

import pytest

from benchmarks.common import scaled, single_table
from repro.workloads import selection_query

N_TUPLES = scaled(4000, 250)
RATES = scaled([0.0, 0.05, 0.15, 0.30], [0.0, 0.15])


@pytest.fixture(scope="module", params=RATES)
def setup(request):
    return single_table(N_TUPLES, request.param)


@pytest.mark.benchmark(group="demo3b-conflicts")
def test_demo3b_raw_sql(benchmark, setup):
    query = selection_query("r").sql
    benchmark(lambda: setup.hippo.raw_answers(query))
    benchmark.extra_info["conflict_rate"] = setup.conflict_fraction


@pytest.mark.benchmark(group="demo3b-conflicts")
def test_demo3b_hippo(benchmark, setup):
    query = selection_query("r").sql
    answers = benchmark(lambda: setup.hippo.consistent_answers(query))
    benchmark.extra_info["conflict_rate"] = setup.conflict_fraction
    benchmark.extra_info["prover_checked"] = answers.stats[
        "prover"
    ].candidates_checked
    benchmark.extra_info["skipped_by_core"] = answers.stats["skipped_by_core"]


@pytest.mark.benchmark(group="demo3b-conflicts")
def test_demo3b_rewriting(benchmark, setup):
    query = selection_query("r").sql
    answers = benchmark(lambda: setup.rewriting.consistent_answers(query))
    benchmark.extra_info["conflict_rate"] = setup.conflict_fraction
    assert answers.as_set() == setup.hippo.consistent_answers(query).as_set()
