"""Live rebalancing: a skewed workload, a triggered move, converging lag.

The process executor (:mod:`repro.conflicts.executor`) rebalances by
moving one hot topic between live OS-process workers through the
checkpoint -> transfer -> resume handoff.  This benchmark prices that
claim on a 4-topic workload where one topic carries most of the
records and the initial assignment piles three topics onto worker 0:

* ``before``: the drain with the skewed assignment -- worker 0 does
  almost all the work;
* ``rebalance``: the executor's own trigger
  (:meth:`~repro.conflicts.executor.ProcessShardExecutor.rebalance`)
  picks the move from live lag skew and performs the handoff while the
  writer keeps appending;
* ``after``: the post-move drain -- the per-worker shares converge.

Every run **asserts** the merged graph equals full re-detection on the
writer both before and after the move (the rebalance never trades
correctness), that the handoff resumed from the transfer packet rather
than re-bootstrapping, and that the move strictly reduced the skew.

Run: ``python -m pytest benchmarks/bench_rebalance.py -q``
or standalone: ``python benchmarks/bench_rebalance.py``;
record history: ``python benchmarks/common.py --record rebalance``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import pytest

from repro import Database
from repro.conflicts import (
    ProcessShardExecutor,
    detect_conflicts,
    load_ownership,
)
from repro.engine.feed import ChangeFeed
from repro.workloads import generate_key_conflict_table

try:
    from benchmarks.common import scaled
except ImportError:  # standalone: python benchmarks/bench_rebalance.py
    from common import scaled

#: Total tuples across all topics; the hot topic gets HOT_SHARE of them.
SIZES = scaled([8000], [240])
HOT_SHARE = 0.7
CONFLICTS = 0.05
TOPICS = ("r0", "r1", "r2", "hot")
#: Everything piles onto worker 0; worker 1 idles on one cold topic.
SKEWED = {"r0": 0, "r1": 0, "hot": 0, "r2": 1}


def build_feed(directory: Path, n_tuples: int):
    """A durable 4-topic workload with one hot topic."""
    feed = ChangeFeed(directory)
    db = Database(feed=feed)
    cold = int(n_tuples * (1 - HOT_SHARE)) // 3
    constraints = []
    for index, name in enumerate(TOPICS):
        size = int(n_tuples * HOT_SHARE) if name == "hot" else cold
        table = generate_key_conflict_table(
            db, name, size, CONFLICTS, seed=47 + index
        )
        constraints.append(table.fd)
    feed.flush()
    return feed, db, constraints


def run_once(directory: Path, db, constraints):
    """Drain skewed, rebalance live, drain again; return the report."""
    report: dict = {}
    started = time.perf_counter()
    with ProcessShardExecutor(
        directory,
        constraints,
        workers=2,
        assignment=SKEWED,
        mp_context="fork",
    ) as executor:
        rows = executor.drain()
        report["before_s"] = time.perf_counter() - started
        report["before_applied"] = [
            sum(row.applied_records.values()) for row in rows
        ]
        expected = detect_conflicts(db, constraints).hypergraph.as_dict()
        assert executor.merged_graph().as_dict() == expected

        # The writer keeps appending hot records, then the executor's
        # own trigger picks and performs the move from live lag skew.
        suffix = max(len(rows) * 8, 16)
        for i in range(suffix):
            db.execute(f"INSERT INTO hot VALUES ({i}, {i})")
        db.changes.feed.flush()
        started = time.perf_counter()
        move = executor.rebalance()
        report["move_s"] = time.perf_counter() - started
        assert move is not None and move.topic == "hot"
        assert move.skew_after < move.skew_before  # strictly reduced
        report["move"] = (move.topic, move.source, move.target)
        report["skew"] = (move.skew_before, move.skew_after)

        started = time.perf_counter()
        rows = executor.drain()
        report["after_s"] = time.perf_counter() - started
        assert all(row.lag == 0 for row in rows)  # lag converged
        expected = detect_conflicts(db, constraints).hypergraph.as_dict()
        assert executor.merged_graph().as_dict() == expected
        assert executor.feed.transfers() == {}  # packet adopted + swept
        ownership = load_ownership(directory)
        assert ownership is not None and ownership.owner["hot"] == move.target
    return report


def test_rebalance_converges_lag_and_preserves_the_graph(tmp_path_factory):
    """The rebalance gate: the triggered move strictly reduces skew,
    lag converges after it, and the merged graph equals full
    re-detection before and after (smoke-scaled)."""
    for n_tuples in SIZES:
        directory = tmp_path_factory.mktemp("feed") / f"n{n_tuples}"
        feed, db, constraints = build_feed(directory, n_tuples)
        report = run_once(directory, db, constraints)
        feed.close()
        print(
            f"\nN={n_tuples}: before {report['before_s'] * 1e3:.1f} ms"
            f" (applied/worker {report['before_applied']}),"
            f" move {report['move']} in {report['move_s'] * 1e3:.1f} ms"
            f" (skew {report['skew'][0]} -> {report['skew'][1]}),"
            f" after {report['after_s'] * 1e3:.1f} ms"
        )


@pytest.mark.benchmark(group="rebalance")
def test_rebalance_cycle_timed(benchmark, tmp_path_factory):
    """The recordable number: one full skewed-drain -> triggered-move ->
    converge cycle on a fresh feed per round (the handoff itself is the
    interesting cost; build time is excluded via the setup hook)."""
    n_tuples = SIZES[-1]
    feeds = []

    def fresh():
        directory = (
            tmp_path_factory.mktemp("feed") / f"round{len(feeds)}"
        )
        feed, db, constraints = build_feed(directory, n_tuples)
        feeds.append(feed)
        return (directory, db, constraints), {}

    report = benchmark.pedantic(
        run_once, setup=fresh, rounds=3, warmup_rounds=0
    )
    benchmark.extra_info["skew"] = list(report["skew"])
    for feed in feeds:
        feed.close()


def main() -> int:  # pragma: no cover - convenience entry
    """Standalone run: the three phases at every size."""
    print(f"{'N':>8} {'phase':>10} {'seconds':>9}  detail")
    for n_tuples in SIZES:
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp) / "feed"
            feed, db, constraints = build_feed(directory, n_tuples)
            report = run_once(directory, db, constraints)
            feed.close()
            print(
                f"{n_tuples:>8} {'before':>10} {report['before_s']:>8.2f}s"
                f"  applied/worker {report['before_applied']}"
            )
            print(
                f"{n_tuples:>8} {'move':>10} {report['move_s']:>8.2f}s"
                f"  {report['move']} skew {report['skew'][0]}"
                f" -> {report['skew'][1]}"
            )
            print(
                f"{n_tuples:>8} {'after':>10} {report['after_s']:>8.2f}s"
                "  lag converged, graph equal"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
