"""DEMO-3a: running time vs database size (the part-3 headline figure).

Series: raw SQL / Hippo / query rewriting, selection query, 5% conflicts,
N swept.  Expected shape: all three scale near-linearly; Hippo tracks raw
SQL within a small constant factor and stays below rewriting.
"""

from __future__ import annotations

import pytest

from benchmarks.common import scaled, single_table
from repro.workloads import selection_query

SIZES = scaled([500, 1000, 2000, 4000, 8000], [200, 400])
CONFLICTS = 0.05


@pytest.fixture(scope="module", params=SIZES)
def setup(request):
    return single_table(request.param, CONFLICTS)


@pytest.mark.benchmark(group="demo3a-size")
def test_demo3a_raw_sql(benchmark, setup):
    query = selection_query("r").sql
    benchmark(lambda: setup.hippo.raw_answers(query))
    benchmark.extra_info["n_tuples"] = setup.n_tuples


@pytest.mark.benchmark(group="demo3a-size")
def test_demo3a_hippo(benchmark, setup):
    query = selection_query("r").sql
    answers = benchmark(lambda: setup.hippo.consistent_answers(query))
    benchmark.extra_info["n_tuples"] = setup.n_tuples
    benchmark.extra_info["answers"] = len(answers.rows)


@pytest.mark.benchmark(group="demo3a-size")
def test_demo3a_rewriting(benchmark, setup):
    query = selection_query("r").sql
    answers = benchmark(lambda: setup.rewriting.consistent_answers(query))
    benchmark.extra_info["n_tuples"] = setup.n_tuples
    # The approaches must agree wherever rewriting applies.
    assert answers.as_set() == setup.hippo.consistent_answers(query).as_set()
