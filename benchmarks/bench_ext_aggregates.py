"""EXT-1: range-consistent scalar aggregation (reference [3] extension).

The polynomial range algorithms vs. their cost drivers: table size and
conflict rate.  Expected shape: near-linear in N, insensitive to the
conflict rate (one grouping pass either way).
"""

from __future__ import annotations

import pytest

from repro.aggregates import aggregate_range
from repro.engine import Database
from repro.workloads import generate_key_conflict_table

from benchmarks.common import scaled

SIZES = scaled([1000, 4000], [250])
FUNCTIONS = ["COUNT", "SUM", "MIN", "MAX", "AVG"]


@pytest.fixture(scope="module", params=SIZES)
def populated(request):
    db = Database()
    table = generate_key_conflict_table(db, "pay", request.param, 0.10, seed=29)
    return db, table, request.param


@pytest.mark.benchmark(group="ext1-aggregates")
@pytest.mark.parametrize("function", FUNCTIONS)
def test_ext1_aggregate_range(benchmark, populated, function):
    db, table, n_tuples = populated
    column = None if function == "COUNT" else "b0"
    result = benchmark(lambda: aggregate_range(db, table.fd, function, column))
    benchmark.extra_info["n_tuples"] = n_tuples
    benchmark.extra_info["glb"] = result.glb
    benchmark.extra_info["lub"] = result.lub
    assert result.glb <= result.lub
    if function == "COUNT":
        assert result.definite  # one tuple per key in every repair
