"""Shard scaling: 2 and 4 workers vs. a monolithic replica.

The sharded maintainers (:mod:`repro.conflicts.shard`) exist so the
conflict hypergraph can be maintained by several consumer groups, each
over a topic subset.  This benchmark prices the decomposition against
the monolithic replica on a multi-relation workload:

* ``monolith``: one :class:`~repro.conflicts.replica.ReplicaHypergraph`
  draining the whole feed;
* ``shards(2)`` / ``shards(4)``: a
  :class:`~repro.conflicts.shard.ShardCoordinator` draining the same
  feed split 2- and 4-ways by the constraint-aware plan.

Every run **asserts** that each coordinator's lag drains to zero and
that the merged shard view equals the monolithic replica's graph (and
full re-detection on the primary) -- the scale-out never trades
correctness.  Wall-clock per configuration is reported; the workers run
sequentially in one process here, so the interesting number is the
per-shard share of the work (the cross-process speedup ceiling), not an
in-process speedup.

Run: ``python -m pytest benchmarks/bench_shard_scaling.py -q``
or standalone: ``python benchmarks/bench_shard_scaling.py``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import pytest

from repro import Database
from repro.conflicts import (
    ReplicaHypergraph,
    ShardCoordinator,
    detect_conflicts,
)
from repro.engine.feed import ChangeFeed
from repro.workloads import generate_key_conflict_table

try:
    from benchmarks.common import scaled
except ImportError:  # standalone: python benchmarks/bench_shard_scaling.py
    from common import scaled

#: Total tuples across all topics (the N >= 16k acceptance shape).
SIZES = scaled([16000], [400])
TOPICS = 4
CONFLICTS = 0.05
WORKER_COUNTS = (2, 4)


def build_feed(directory: Path, n_tuples: int):
    """A durable multi-topic workload: one keyed table per topic."""
    feed = ChangeFeed(directory)
    db = Database(feed=feed)
    constraints = []
    for index in range(TOPICS):
        table = generate_key_conflict_table(
            db, f"r{index}", n_tuples // TOPICS, CONFLICTS, seed=31 + index
        )
        constraints.append(table.fd)
    feed.flush()
    return feed, db, constraints


def drain_monolith(directory: Path, constraints):
    reader = ChangeFeed(directory)
    started = time.perf_counter()
    replica = ReplicaHypergraph(reader, constraints, group="bench-monolith")
    while replica.lag:
        replica.sync()
    seconds = time.perf_counter() - started
    assert replica.lag == 0
    reader.close()
    return replica, seconds


def drain_shards(directory: Path, constraints, workers: int):
    reader = ChangeFeed(directory)
    started = time.perf_counter()
    coordinator = ShardCoordinator(
        reader,
        constraints,
        workers=workers,
        group_prefix=f"bench-shard{workers}",
        snapshots=False,
    )
    records = coordinator.drain()
    seconds = time.perf_counter() - started
    assert coordinator.lag == 0  # lag drains to zero
    graph = coordinator.graph
    coordinator.close()
    reader.close()
    return graph, records, seconds


@pytest.fixture(scope="module", params=SIZES)
def recorded(request, tmp_path_factory):
    directory = tmp_path_factory.mktemp("feed") / f"n{request.param}"
    feed, db, constraints = build_feed(directory, request.param)
    feed.close()
    yield directory, db, constraints, request.param


def test_sharded_drain_matches_the_monolith(recorded):
    """The scaling gate: 2- and 4-worker shard sets drain the same feed
    to zero lag and their merged graphs equal the monolithic replica's
    (and full re-detection) at N >= 16k (smoke-scaled)."""
    directory, db, constraints, n_tuples = recorded
    monolith, mono_seconds = drain_monolith(directory, constraints)
    expected = monolith.graph.as_dict()
    assert expected == detect_conflicts(db, constraints).hypergraph.as_dict()
    print(
        f"\nN={n_tuples}: monolith drained in {mono_seconds * 1e3:.1f} ms,"
        f" {len(expected)} edges"
    )
    for workers in WORKER_COUNTS:
        graph, records, seconds = drain_shards(
            directory, constraints, workers
        )
        assert graph.as_dict() == expected  # merged graph equality
        print(
            f"N={n_tuples}: {workers} shard workers drained {records}"
            f" records in {seconds * 1e3:.1f} ms"
            f" (~{seconds / workers * 1e3:.1f} ms/worker share)"
        )


def main() -> int:  # pragma: no cover - convenience entry
    """Standalone run: wall-clock per configuration at every size."""
    print(f"{'N':>8} {'config':>12} {'records':>9} {'seconds':>9} {'edges':>7}")
    for n_tuples in SIZES:
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp) / "feed"
            feed, db, constraints = build_feed(directory, n_tuples)
            feed.close()
            monolith, seconds = drain_monolith(directory, constraints)
            expected = monolith.graph.as_dict()
            assert (
                expected
                == detect_conflicts(db, constraints).hypergraph.as_dict()
            )
            with ChangeFeed(directory) as counter:
                records = sum(t.end for t in counter.topics())
            print(
                f"{n_tuples:>8} {'monolith':>12} {records:>9}"
                f" {seconds:>8.2f}s {len(expected):>7}"
            )
            for workers in WORKER_COUNTS:
                graph, drained, seconds = drain_shards(
                    directory, constraints, workers
                )
                assert graph.as_dict() == expected
                print(
                    f"{n_tuples:>8} {f'shards({workers})':>12} {drained:>9}"
                    f" {seconds:>8.2f}s {len(graph.as_dict()):>7}"
                )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
