"""DEMO-2: expressive power of supported queries and constraints.

Paper artifact: demonstration part 2.  For each query class (S, SJ, SJU,
SJUD) the benchmark runs every approach that *supports* the class and
asserts the support matrix itself:

* Hippo answers all four classes;
* rewriting raises on SJU (unions are its documented gap);
* both agree wherever both apply.
"""

from __future__ import annotations

import pytest

from benchmarks.common import scaled, join_tables, union_tables
from repro.errors import RewritingError
from repro.workloads import (
    difference_query,
    join_query,
    selection_query,
    union_query,
)

N_TUPLES = scaled(1000, 150)
CONFLICTS = 0.05


@pytest.fixture(scope="module")
def joined():
    return join_tables(N_TUPLES, CONFLICTS)


@pytest.fixture(scope="module")
def unioned():
    return union_tables(N_TUPLES, CONFLICTS)


@pytest.mark.benchmark(group="demo2-S")
def test_demo2_selection_hippo(benchmark, joined):
    query = selection_query("l").sql
    answers = benchmark(lambda: joined.hippo.consistent_answers(query))
    assert answers.as_set() == joined.rewriting.consistent_answers(query).as_set()


@pytest.mark.benchmark(group="demo2-S")
def test_demo2_selection_rewriting(benchmark, joined):
    query = selection_query("l").sql
    benchmark(lambda: joined.rewriting.consistent_answers(query))


@pytest.mark.benchmark(group="demo2-SJ")
def test_demo2_join_hippo(benchmark, joined):
    query = join_query("l", "r").sql
    answers = benchmark(lambda: joined.hippo.consistent_answers(query))
    assert answers.as_set() == joined.rewriting.consistent_answers(query).as_set()


@pytest.mark.benchmark(group="demo2-SJ")
def test_demo2_join_rewriting(benchmark, joined):
    query = join_query("l", "r").sql
    benchmark(lambda: joined.rewriting.consistent_answers(query))


@pytest.mark.benchmark(group="demo2-SJU")
def test_demo2_union_hippo_only(benchmark, unioned):
    query = union_query("l", "r")
    assert not query.rewriting_supported
    with pytest.raises(RewritingError):
        unioned.rewriting.rewrite(query.sql)
    answers = benchmark(lambda: unioned.hippo.consistent_answers(query.sql))
    benchmark.extra_info["answers"] = len(answers.rows)


@pytest.mark.benchmark(group="demo2-SJUD")
def test_demo2_difference_hippo(benchmark, unioned):
    query = difference_query("l", "r").sql
    answers = benchmark(lambda: unioned.hippo.consistent_answers(query))
    assert answers.as_set() == unioned.rewriting.consistent_answers(query).as_set()


@pytest.mark.benchmark(group="demo2-SJUD")
def test_demo2_difference_rewriting(benchmark, unioned):
    query = difference_query("l", "r").sql
    benchmark(lambda: unioned.rewriting.consistent_answers(query))
