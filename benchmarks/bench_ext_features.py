"""EXT-2..4: benchmarks for the extension features.

* EXT-2 restricted foreign keys: detection with an FK cascade chain.
* EXT-3 exact repair counting: component factorization counts astronomical
  repair spaces without enumeration.
* EXT-4 grouped aggregate ranges: per-group COUNT/SUM bounds.
* possible answers: the certainty dual costs about the same as the
  consistent answers it brackets.
"""

from __future__ import annotations

import pytest

from repro import Database, HippoEngine
from repro.aggregates import grouped_count_range, grouped_sum_range
from repro.conflicts import detect_conflicts
from repro.constraints import ForeignKeyConstraint, FunctionalDependency
from repro.repairs import count_repairs_exact
from repro.workloads import generate_key_conflict_table

from benchmarks.common import scaled

N_TUPLES = scaled(3000, 250)


@pytest.fixture(scope="module")
def fk_db():
    """customer <- orders chain with 5% dangling orders."""
    db = Database()
    import random

    rng = random.Random(37)
    db.execute("CREATE TABLE customer (id INTEGER, city INTEGER)")
    db.execute("CREATE TABLE orders (oid INTEGER, cid INTEGER, total INTEGER)")
    n_customers = N_TUPLES // 3
    db.insert_rows(
        "customer", [(i, rng.randrange(100)) for i in range(n_customers)]
    )
    order_rows = []
    for oid in range(N_TUPLES):
        dangling = rng.random() < 0.05
        cid = n_customers + oid if dangling else rng.randrange(n_customers)
        order_rows.append((oid, cid, rng.randrange(1000)))
    db.insert_rows("orders", order_rows)
    fk = ForeignKeyConstraint("orders", ["cid"], "customer", ["id"])
    fd = FunctionalDependency("orders", ["oid"], ["cid", "total"])
    return db, [fd, fk]


@pytest.mark.benchmark(group="ext2-foreign-keys")
def test_ext2_fk_detection(benchmark, fk_db):
    db, constraints = fk_db
    report = benchmark(lambda: detect_conflicts(db, constraints))
    singletons = report.hypergraph.summary()["singleton_edges"]
    benchmark.extra_info["dangling_orders"] = singletons
    assert singletons > 0


@pytest.mark.benchmark(group="ext2-foreign-keys")
def test_ext2_fk_consistent_answers(benchmark, fk_db):
    db, constraints = fk_db
    hippo = HippoEngine(db, constraints)
    query = (
        "SELECT o.oid, o.cid, o.total, c.city FROM orders o, customer c"
        " WHERE o.cid = c.id"
    )
    answers = benchmark(lambda: hippo.consistent_answers(query))
    benchmark.extra_info["answers"] = len(answers.rows)


@pytest.fixture(scope="module")
def conflicted():
    db = Database()
    table = generate_key_conflict_table(db, "r", N_TUPLES, 0.30, seed=43)
    return db, table, HippoEngine(db, [table.fd])


@pytest.mark.benchmark(group="ext3-counting")
def test_ext3_repair_counting(benchmark, conflicted):
    _db, _table, hippo = conflicted
    count = benchmark(lambda: count_repairs_exact(hippo.hypergraph))
    benchmark.extra_info["repairs_log2"] = count.total.bit_length() - 1
    benchmark.extra_info["components"] = count.components
    # 30% of the tuples in pair conflicts (~0.15*N independent binary
    # choices): an astronomical repair count, obtained without
    # enumerating a single repair.  The bound scales with N so the
    # smoke gate's tiny scenario asserts the same shape.
    assert count.total >= 2 ** (N_TUPLES // 8)


@pytest.mark.benchmark(group="ext4-grouped-aggregates")
def test_ext4_grouped_count(benchmark, conflicted):
    db, table, _hippo = conflicted
    ranges = benchmark(lambda: grouped_count_range(db, table.fd, "b0"))
    benchmark.extra_info["groups"] = len(ranges)


@pytest.mark.benchmark(group="ext4-grouped-aggregates")
def test_ext4_grouped_sum(benchmark, conflicted):
    db, table, _hippo = conflicted
    ranges = benchmark(lambda: grouped_sum_range(db, table.fd, "b0", "a"))
    assert all(r.glb <= r.lub for r in ranges.values())


@pytest.mark.benchmark(group="ext5-possible")
def test_ext5_possible_answers(benchmark, conflicted):
    _db, _table, hippo = conflicted
    answers = benchmark(lambda: hippo.possible_answers("SELECT * FROM r"))
    consistent = hippo.consistent_answers("SELECT * FROM r")
    benchmark.extra_info["possible"] = len(answers.rows)
    benchmark.extra_info["consistent"] = len(consistent.rows)
    assert consistent.as_set() <= answers.as_set()
