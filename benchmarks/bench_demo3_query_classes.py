"""DEMO-3c: running time by query class (S / SJ / SJU / SJUD).

Two generated tables, 5% conflicts, one benchmark per (class, approach)
pair that supports the class.  Expected shape: joins dominate the cost
for every approach; Hippo's overhead factor over raw SQL is similar
across classes; unions run at Hippo-only speed (rewriting inapplicable).
"""

from __future__ import annotations

import pytest

from benchmarks.common import scaled, TwoTableSetup, join_tables, union_tables
from repro.workloads import (
    difference_query,
    join_query,
    selection_query,
    union_query,
)

N_TUPLES = scaled(1500, 200)
CONFLICTS = 0.05


@pytest.fixture(scope="module")
def joined() -> TwoTableSetup:
    return join_tables(N_TUPLES, CONFLICTS)


@pytest.fixture(scope="module")
def unioned() -> TwoTableSetup:
    return union_tables(N_TUPLES, CONFLICTS)


@pytest.mark.benchmark(group="demo3c-classes")
def test_demo3c_s_raw(benchmark, joined):
    benchmark(lambda: joined.hippo.raw_answers(selection_query("l").sql))


@pytest.mark.benchmark(group="demo3c-classes")
def test_demo3c_s_hippo(benchmark, joined):
    benchmark(lambda: joined.hippo.consistent_answers(selection_query("l").sql))


@pytest.mark.benchmark(group="demo3c-classes")
def test_demo3c_sj_raw(benchmark, joined):
    benchmark(lambda: joined.hippo.raw_answers(join_query("l", "r").sql))


@pytest.mark.benchmark(group="demo3c-classes")
def test_demo3c_sj_hippo(benchmark, joined):
    benchmark(lambda: joined.hippo.consistent_answers(join_query("l", "r").sql))


@pytest.mark.benchmark(group="demo3c-classes")
def test_demo3c_sju_raw(benchmark, unioned):
    benchmark(lambda: unioned.hippo.raw_answers(union_query("l", "r").sql))


@pytest.mark.benchmark(group="demo3c-classes")
def test_demo3c_sju_hippo(benchmark, unioned):
    benchmark(lambda: unioned.hippo.consistent_answers(union_query("l", "r").sql))


@pytest.mark.benchmark(group="demo3c-classes")
def test_demo3c_sjud_raw(benchmark, unioned):
    benchmark(lambda: unioned.hippo.raw_answers(difference_query("l", "r").sql))


@pytest.mark.benchmark(group="demo3c-classes")
def test_demo3c_sjud_hippo(benchmark, unioned):
    benchmark(
        lambda: unioned.hippo.consistent_answers(difference_query("l", "r").sql)
    )
