"""FIG-1 infrastructure: per-stage costs of the Hippo pipeline.

Times Conflict Detection (runs once, before any query -- its cost is
amortized over the query stream) and hypergraph primitives, so the
experiment index can report where the time goes.
"""

from __future__ import annotations

import pytest

from repro import Database, HippoEngine
from repro.conflicts import detect_conflicts
from repro.workloads import generate_key_conflict_table

from benchmarks.common import scaled

N_TUPLES = scaled(4000, 300)
CONFLICTS = 0.05


@pytest.fixture(scope="module")
def populated():
    db = Database()
    table = generate_key_conflict_table(db, "r", N_TUPLES, CONFLICTS, seed=23)
    return db, table


@pytest.mark.benchmark(group="pipeline-stages")
def test_stage_conflict_detection(benchmark, populated):
    db, table = populated
    report = benchmark(lambda: detect_conflicts(db, [table.fd]))
    benchmark.extra_info["edges"] = len(report.hypergraph)


@pytest.mark.benchmark(group="pipeline-stages")
def test_stage_engine_construction(benchmark, populated):
    db, table = populated
    engine = benchmark(lambda: HippoEngine(db, [table.fd]))
    assert len(engine.hypergraph) > 0


@pytest.mark.benchmark(group="pipeline-stages")
def test_stage_independence_checks(benchmark, populated):
    db, table = populated
    hypergraph = detect_conflicts(db, [table.fd]).hypergraph
    vertices = list(hypergraph.conflicting_vertices())[:64]

    def run():
        for index in range(len(vertices) - 1):
            hypergraph.is_independent(vertices[index : index + 2])

    benchmark(run)
