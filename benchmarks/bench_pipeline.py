"""FIG-1 infrastructure: per-stage costs of the Hippo pipeline.

Times Conflict Detection (runs once, before any query -- its cost is
amortized over the query stream) and hypergraph primitives, so the
experiment index can report where the time goes.

Also gates the **statement/plan cache**: a repeated-statement stream
(the CQA shape -- the same envelope text re-executed after every data
change) must run at >= 2x the throughput of an identical database with
the cache disabled, since a cache hit skips parsing and planning
entirely.
"""

from __future__ import annotations

import time

import pytest

from repro import Database, HippoEngine
from repro.conflicts import detect_conflicts
from repro.workloads import generate_key_conflict_table

from benchmarks.common import scaled

N_TUPLES = scaled(4000, 300)
CONFLICTS = 0.05


@pytest.fixture(scope="module")
def populated():
    db = Database()
    table = generate_key_conflict_table(db, "r", N_TUPLES, CONFLICTS, seed=23)
    return db, table


@pytest.mark.benchmark(group="pipeline-stages")
def test_stage_conflict_detection(benchmark, populated):
    db, table = populated
    report = benchmark(lambda: detect_conflicts(db, [table.fd]))
    benchmark.extra_info["edges"] = len(report.hypergraph)


@pytest.mark.benchmark(group="pipeline-stages")
def test_stage_engine_construction(benchmark, populated):
    db, table = populated
    engine = benchmark(lambda: HippoEngine(db, [table.fd]))
    assert len(engine.hypergraph) > 0


#: The repeated-statement gate: rows are tiny (parse + plan must
#: dominate, as it does for the envelope texts Hippo re-executes), the
#: repeat count large enough for stable timing.
CACHE_GATE_ROWS = scaled(16, 8)
CACHE_GATE_REPEATS = scaled(400, 80)
CACHE_GATE_TRIALS = 3

#: A planner-heavy, cacheable statement (no subqueries -- those are
#: deliberately uncacheable): join + aggregate + several conjuncts.
CACHE_GATE_SQL = (
    "SELECT r.a, COUNT(*), SUM(s.c) FROM r, s"
    " WHERE r.a = s.a AND r.b >= 0 AND r.b < 1000000 AND s.c >= 0"
    " GROUP BY r.a ORDER BY r.a"
)


def _cache_gate_db(plan_cache: bool) -> Database:
    db = Database(plan_cache=plan_cache)
    db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
    db.execute("CREATE TABLE s (a INTEGER, c INTEGER)")
    for i in range(CACHE_GATE_ROWS):
        db.execute(f"INSERT INTO r VALUES ({i % 8}, {i})")
        db.execute(f"INSERT INTO s VALUES ({i % 8}, {i * 3})")
    return db


def _repeated_statement_seconds(plan_cache: bool) -> float:
    """Min-of-trials time for the repeated-statement stream."""
    best = float("inf")
    for _ in range(CACHE_GATE_TRIALS):
        db = _cache_gate_db(plan_cache)
        db.execute(CACHE_GATE_SQL)  # warm (first plan is a miss anyway)
        started = time.perf_counter()
        for _ in range(CACHE_GATE_REPEATS):
            db.execute(CACHE_GATE_SQL)
        best = min(best, time.perf_counter() - started)
        if plan_cache:
            assert db.stats.plan_cache_hits == CACHE_GATE_REPEATS
        else:
            assert db.stats.plan_cache_hits == 0
    return best


def test_plan_cache_repeated_statement_gate():
    """The acceptance gate: >= 2x throughput with the plan cache on."""
    cached = _repeated_statement_seconds(plan_cache=True)
    uncached = _repeated_statement_seconds(plan_cache=False)
    speedup = uncached / cached if cached else float("inf")
    print(
        f"plan-cache gate: {CACHE_GATE_REPEATS} repeats, cached"
        f" {cached * 1e3:.1f}ms vs uncached {uncached * 1e3:.1f}ms"
        f" ({speedup:.1f}x, gate >= 2x)"
    )
    assert speedup >= 2.0, (
        f"plan cache gave only {speedup:.2f}x over the uncached baseline"
    )


@pytest.mark.benchmark(group="pipeline-stages")
def test_stage_independence_checks(benchmark, populated):
    db, table = populated
    hypergraph = detect_conflicts(db, [table.fd]).hypergraph
    vertices = list(hypergraph.conflicting_vertices())[:64]

    def run():
        for index in range(len(vertices) - 1):
            hypergraph.is_independent(vertices[index : index + 2])

    benchmark(run)
