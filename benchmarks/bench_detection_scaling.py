"""FIG-1 support: Conflict Detection scales near-linearly.

The premise of keeping the hypergraph in main memory is that building it
is cheap: the FD self-join runs as a hash join, so detection time grows
linearly in N (and mildly in the conflict rate).  The benchmark also
asserts the scan-count bound, so a planner regression to a quadratic
nested loop fails loudly rather than just slowing down.
"""

from __future__ import annotations

import pytest

from repro.conflicts import detect_conflicts
from repro.engine import Database
from repro.workloads import generate_key_conflict_table

from benchmarks.common import scaled

SIZES = scaled([1000, 4000, 16000], [300, 600])


@pytest.fixture(scope="module", params=SIZES)
def populated(request):
    db = Database()
    table = generate_key_conflict_table(db, "r", request.param, 0.05, seed=31)
    return db, table, request.param


@pytest.mark.benchmark(group="detection-scaling")
def test_detection_scales_linearly(benchmark, populated):
    db, table, n_tuples = populated

    def run():
        db.stats.reset()
        return detect_conflicts(db, [table.fd])

    report = benchmark(run)
    benchmark.extra_info["n_tuples"] = n_tuples
    benchmark.extra_info["edges"] = len(report.hypergraph)
    assert db.stats.rows_scanned <= 4 * n_tuples  # hash join, not O(N^2)
