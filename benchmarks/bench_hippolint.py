"""Analyzer timing budget: a full hippolint run stays under 5 seconds.

The flow-sensitive rules (HL013-HL016) build CFGs and run dataflow to
fixpoint; lexical pre-filters keep that work bounded to the handful of
functions that can actually produce findings.  This gate pins the
property: a cold (``--no-cache``) run over the whole tree must finish
inside the budget, or the analyzer has stopped being something people
run on every change.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.devtools.framework import analyze_paths

#: Wall-clock ceiling for a cold full-tree run, in seconds.
BUDGET_SECONDS = 5.0

_REPO_ROOT = Path(__file__).resolve().parent.parent


def test_full_tree_run_within_budget(benchmark):
    src = str(_REPO_ROOT / "src")
    tests = str(_REPO_ROOT / "tests")

    def run() -> tuple[int, float]:
        started = time.perf_counter()
        diagnostics, checked = analyze_paths([src, tests])
        elapsed = time.perf_counter() - started
        assert not diagnostics, [d.render() for d in diagnostics]
        return checked, elapsed

    checked, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["checked_files"] = checked
    assert checked > 100, "expected to sweep the whole tree"
    assert elapsed <= BUDGET_SECONDS, (
        f"hippolint full-tree run took {elapsed:.2f}s,"
        f" over the {BUDGET_SECONDS:.1f}s budget"
    )
