"""Feed replay throughput: replica rebuild vs. direct in-memory apply.

The durable change feed exists so conflict state can be rebuilt *away*
from the writer (replicas, restarts, future shards).  This benchmark
prices that capability:

* ``publish``: loading a workload into a database that appends every
  mutation to durable JSONL segments (the write-side overhead);
* ``replay``: a :class:`~repro.conflicts.replica.ReplicaHypergraph`
  attaching to the segments cold and replaying to a full conflict
  hypergraph -- reported as tuples/second, with replica lag asserted to
  drain to zero;
* ``direct``: the same workload folded into a
  :class:`~repro.core.hippo.HippoEngine` hypergraph in-process (the
  PR 1 path the replica is measured against).

It also gates the feed's **bounded-memory promise**: opening a durable
feed and bootstrapping a replica over a history of >= 16 sealed
segments must keep at most ``2 x segment_records`` feed records
resident (the streaming chunk plus the active tail -- never the
history), asserted under ``--smoke`` and reported with the
``tracemalloc`` peak of the bootstrap.

Replayed state is verified equal to full re-detection on every run.

Run: ``python -m pytest benchmarks/bench_feed_replay.py -q``
or standalone: ``python benchmarks/bench_feed_replay.py``.
"""

from __future__ import annotations

import itertools
import random
import tempfile
import time
import tracemalloc
from pathlib import Path

import pytest

from repro import Database, HippoEngine
from repro.conflicts import ReplicaHypergraph, detect_conflicts
from repro.engine.database import (
    REPLAY_BATCH_RECORDS,
    apply_feed_record,
    apply_feed_records,
)
from repro.engine.feed import RECORD_CHANGE, ChangeFeed, FeedRecord
from repro.workloads import generate_key_conflict_table

try:
    from benchmarks.common import scaled
except ImportError:  # standalone: python benchmarks/bench_feed_replay.py
    from common import scaled

SIZES = scaled([4000, 16000], [400])
UPDATES = scaled(300, 30)
CONFLICTS = 0.05

_group_ids = itertools.count()


def build_feed(directory: Path, n_tuples: int):
    """Populate a durable database: bulk load + an update stream."""
    feed = ChangeFeed(directory)
    db = Database(feed=feed)
    table = generate_key_conflict_table(db, "r", n_tuples, CONFLICTS, seed=47)
    rng = random.Random(53)
    for _ in range(UPDATES):
        kind = rng.randrange(3)
        key = rng.randrange(10 * n_tuples)
        if kind == 0:
            db.execute(f"INSERT INTO r VALUES ({key}, {rng.randrange(1000)})")
        elif kind == 1:
            db.execute(f"DELETE FROM r WHERE a = {key}")
        else:
            db.execute(f"UPDATE r SET b0 = {rng.randrange(1000)} WHERE a = {key}")
    feed.flush()
    return feed, db, table.fd


def replay(directory: Path, fd) -> tuple[ReplicaHypergraph, int, float]:
    """Cold-attach a replica and drain the feed; returns records/seconds."""
    feed = ChangeFeed(directory)
    replica = ReplicaHypergraph(feed, [fd], group=f"bench-{next(_group_ids)}")
    started = time.perf_counter()
    records = 0
    while replica.lag:
        records += replica.sync().records
    seconds = time.perf_counter() - started
    assert replica.lag == 0
    feed.close()
    return replica, records, seconds


@pytest.fixture(scope="module", params=SIZES)
def recorded(request, tmp_path_factory):
    directory = tmp_path_factory.mktemp("feed") / f"n{request.param}"
    feed, db, fd = build_feed(directory, request.param)
    feed.close()
    yield directory, db, fd, request.param


@pytest.mark.benchmark(group="feed-replay")
def test_replay_throughput(benchmark, recorded):
    directory, db, fd, n_tuples = recorded

    def run():
        return replay(directory, fd)

    replica, records, _seconds = benchmark(run)
    benchmark.extra_info["n_tuples"] = n_tuples
    benchmark.extra_info["records"] = records
    # The replayed hypergraph equals full re-detection on the primary.
    assert (
        replica.graph.as_dict()
        == detect_conflicts(db, [fd]).hypergraph.as_dict()
    )


@pytest.mark.benchmark(group="feed-replay")
def test_direct_apply_baseline(benchmark, recorded):
    _directory, _db, _fd, n_tuples = recorded

    def run():
        db = Database()
        table = generate_key_conflict_table(db, "r", n_tuples, CONFLICTS, seed=47)
        engine = HippoEngine(db, [table.fd])
        rng = random.Random(53)
        for _ in range(UPDATES):
            kind = rng.randrange(3)
            key = rng.randrange(10 * n_tuples)
            if kind == 0:
                db.execute(
                    f"INSERT INTO r VALUES ({key}, {rng.randrange(1000)})"
                )
            elif kind == 1:
                db.execute(f"DELETE FROM r WHERE a = {key}")
            else:
                db.execute(
                    f"UPDATE r SET b0 = {rng.randrange(1000)} WHERE a = {key}"
                )
            engine.refresh()
        return engine

    engine = benchmark(run)
    benchmark.extra_info["n_tuples"] = n_tuples
    assert len(engine.hypergraph) >= 0


def test_replica_lag_drains_and_matches(recorded):
    """Lag is visible while behind and zero once caught up."""
    directory, db, fd, _n_tuples = recorded
    feed = ChangeFeed(directory)
    replica = ReplicaHypergraph(feed, [fd], group=f"bench-{next(_group_ids)}")
    assert replica.lag > 0  # cold attach: the whole history is pending
    replica.sync(limit=5)
    assert replica.lag > 0  # bounded sync leaves a measurable backlog
    while replica.lag:
        replica.sync()
    assert replica.lag == 0
    assert (
        replica.graph.as_dict()
        == detect_conflicts(db, [fd]).hypergraph.as_dict()
    )
    feed.close()


#: The batched-apply gate: a poll batch of change records applied via
#: :func:`apply_feed_records` (runs folded into one
#: ``Table.apply_changes`` each) must beat applying the same records one
#: :func:`apply_feed_record` at a time.  Full size is the acceptance
#: bar's N=16k; the smoke size keeps CI honest with a timing-noise
#: slack, since at tiny N a single scheduler hiccup can flip a strict
#: comparison.
APPLY_GATE_RECORDS = scaled(16000, 800)
APPLY_GATE_TRIALS = 3
APPLY_GATE_SLACK = scaled(1.0, 1.5)


def build_apply_records(count: int) -> list[FeedRecord]:
    """``count`` change records on one topic: inserts with a delete
    every 16th record (the update-stream shape, all foldable runs)."""
    records = []
    tid = 0
    for i in range(count):
        if i % 16 == 15:
            records.append(
                FeedRecord(
                    seq=i, topic="gate", offset=i, kind=RECORD_CHANGE,
                    tid=tid, op="delete",
                )
            )
        else:
            tid += 1
            records.append(
                FeedRecord(
                    seq=i, topic="gate", offset=i, kind=RECORD_CHANGE,
                    tid=tid, row=(tid, tid % 97), op="insert",
                )
            )
    return records


def _apply_seconds(records: list[FeedRecord], batched: bool) -> float:
    """Min-of-trials apply time; verifies the replayed state each trial."""
    expected_rows = sum(
        1 if r.op == "insert" else -1 for r in records
    )
    best = float("inf")
    for _ in range(APPLY_GATE_TRIALS):
        db = Database()
        db.execute("CREATE TABLE gate (a INTEGER, b INTEGER)")
        table = db.table("gate")
        with db.changes.feed.suspended():
            started = time.perf_counter()
            if batched:
                for start in range(0, len(records), REPLAY_BATCH_RECORDS):
                    apply_feed_records(
                        db, records[start : start + REPLAY_BATCH_RECORDS]
                    )
            else:
                for record in records:
                    apply_feed_record(db, record)
            best = min(best, time.perf_counter() - started)
        assert len(list(table.tids())) == expected_rows
    return best


def test_batched_apply_beats_per_record_gate():
    """The acceptance gate: batched replay wins at the poll-batch size."""
    records = build_apply_records(APPLY_GATE_RECORDS)
    per_record = _apply_seconds(records, batched=False)
    batched = _apply_seconds(records, batched=True)
    speedup = per_record / batched if batched else float("inf")
    print(
        f"batched-apply gate: {APPLY_GATE_RECORDS} records, per-record"
        f" {per_record * 1e3:.1f}ms vs batched {batched * 1e3:.1f}ms"
        f" ({speedup:.2f}x, gate: batched wins)"
    )
    assert batched < per_record * APPLY_GATE_SLACK, (
        f"batched apply ({batched * 1e3:.1f}ms) did not beat per-record"
        f" apply ({per_record * 1e3:.1f}ms) at N={APPLY_GATE_RECORDS}"
    )


#: Tiny segments for the memory gate, so even the smoke history spans
#: well over the 16 sealed segments the acceptance bar names.
GATE_SEGMENT_RECORDS = 16
GATE_TUPLES = scaled(2000, 320)


def build_gate_history(directory: Path):
    """The memory gate's fixture: a many-segment durable history whose
    ``memory-gate`` group has a committed cut covering all of it, so a
    cold re-attach replays the whole history (the expensive shape).
    Shared by the pytest gate and the standalone report."""
    feed = ChangeFeed(directory, segment_records=GATE_SEGMENT_RECORDS)
    db = Database(feed=feed)
    table = generate_key_conflict_table(
        db, "r", GATE_TUPLES, CONFLICTS, seed=47
    )
    feed.flush()
    warm = ChangeFeed(directory, segment_records=GATE_SEGMENT_RECORDS)
    replica = ReplicaHypergraph(warm, [table.fd], group="memory-gate")
    while replica.lag:
        replica.sync(limit=GATE_SEGMENT_RECORDS)
    replica._consumer.close()  # keep committed offsets, skip the snapshot
    warm.close()
    feed.close()
    return db, table.fd


def bounded_bootstrap(directory: Path, fd) -> dict:
    """Re-attach a replica cold over a long history, measuring memory.

    Returns sealed-segment count, the feed's peak resident record count
    during bootstrap, and the tracemalloc peak of the whole attach.
    """
    tracemalloc.start()
    feed = ChangeFeed(directory, segment_records=GATE_SEGMENT_RECORDS)
    opened_resident = feed.resident_records()
    replica = ReplicaHypergraph(feed, [fd], group="memory-gate")
    _current, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    (data_topic,) = [t for t in feed.topics() if t.name == "r"]
    report = {
        "sealed_segments": data_topic.segments - 1,
        "opened_resident": opened_resident,
        "peak_resident": feed.peak_resident_records,
        "traced_peak_kib": traced_peak / 1024,
        "replica": replica,
    }
    replica._consumer.close()
    feed.close()
    return report


def test_bootstrap_memory_is_bounded_by_the_segment_size(tmp_path):
    """The acceptance gate: >= 16 sealed segments, <= 2x segment_records
    resident feed records across open + replica bootstrap."""
    directory = tmp_path / "feed"
    db, fd = build_gate_history(directory)

    report = bounded_bootstrap(directory, fd)
    assert report["sealed_segments"] >= 16
    assert report["opened_resident"] == 0  # lazy open parses nothing
    assert report["peak_resident"] <= 2 * GATE_SEGMENT_RECORDS
    # The rebuilt graph is still exact.
    assert (
        report["replica"].graph.as_dict()
        == detect_conflicts(db, [fd]).hypergraph.as_dict()
    )
    print(
        f"bootstrap over {report['sealed_segments']} sealed segments:"
        f" peak resident {report['peak_resident']} records"
        f" (cap {2 * GATE_SEGMENT_RECORDS}),"
        f" tracemalloc peak {report['traced_peak_kib']:.0f} KiB"
    )


#: The compaction gate's shape: a few topics, each several sealed
#: segments long, with a slow consumer group stuck half-way through the
#: middle sealed segment of every topic -- the workload that pins whole
#: segments under ``retention="truncate"`` but not under ``"compact"``.
COMPACT_SEGMENT_RECORDS = 8
COMPACT_TABLES = 3
COMPACT_ROUNDS = 24  # records per topic: 3 segments of 8
COMPACT_SUFFIX = 5  # records published after the writer checkpoint


def feed_bytes(directory: Path) -> int:
    """On-disk bytes of every segment file under a feed directory."""
    return sum(
        p.stat().st_size for p in directory.glob("topics/*/*.jsonl")
    )


def build_compaction_history(directory: Path):
    """A durable database over several topics, checkpointed, with a
    registered slow group still at offset 0.  Returns
    ``(feed, db, checkpoint_cut, slow_consumer)``."""
    feed = ChangeFeed(
        directory, segment_records=COMPACT_SEGMENT_RECORDS, retention="compact"
    )
    db = Database(feed=feed)
    for t in range(COMPACT_TABLES):
        db.execute(f"CREATE TABLE r{t} (a INTEGER)")
    for i in range(COMPACT_ROUNDS):  # round-robin: seqs interleave topics
        for t in range(COMPACT_TABLES):
            db.execute(f"INSERT INTO r{t} VALUES ({i})")
    slow = feed.consumer("slow", start="beginning")  # pins offset 0
    cut = db.checkpoint()
    for i in range(COMPACT_SUFFIX):  # the retained suffix a reopen replays
        db.execute(f"INSERT INTO r0 VALUES ({100 + i})")
    feed.flush()
    return feed, db, cut, slow


def run_compaction_gate(directory: Path) -> dict:
    """Drive the slow group half-way, compact, and reopen from snapshot.

    Returns the before/after byte counts and the reopened database's
    restore statistics.
    """
    feed, db, cut, slow = build_compaction_history(directory)
    before = feed_bytes(directory)
    # Half of each topic's consumed history sits mid-segment: commit at
    # 12 of 24 records per topic (plus the schema records).
    slow.poll(limit=COMPACT_TABLES + COMPACT_TABLES * COMPACT_ROUNDS // 2)
    slow.commit()  # retention="compact" reclaims on this commit
    after = feed_bytes(directory)
    feed.close()

    reopened_feed = ChangeFeed(
        directory, segment_records=COMPACT_SEGMENT_RECORDS, retention="compact"
    )
    reopened = Database(feed=reopened_feed)
    report = {
        "before_bytes": before,
        "after_bytes": after,
        "ratio": after / before,
        "restore_mode": reopened.restore_mode,
        "restore_records": reopened.restore_records,
        "suffix_records": sum(reopened_feed.end_offsets().values())
        - sum(cut.values()),
        "tables_equal": all(
            dict(reopened.table(f"r{t}").items())
            == dict(db.table(f"r{t}").items())
            for t in range(COMPACT_TABLES)
        ),
    }
    reopened_feed.close()
    return report


def test_compaction_reclaims_disk_and_reopen_replays_only_the_suffix(
    tmp_path,
):
    """The compaction gate: after a slow group consumes half of each
    sealed segment's history, compacted on-disk bytes drop below 60% of
    the uncompacted log -- and a writer reopen restores from the
    checkpoint snapshot, replaying exactly the post-checkpoint suffix."""
    report = run_compaction_gate(tmp_path / "feed")
    assert report["ratio"] < 0.60, (
        f"compaction left {report['ratio']:.0%} of the log on disk"
    )
    assert report["restore_mode"] == "snapshot"
    assert report["restore_records"] == COMPACT_SUFFIX
    assert report["suffix_records"] == COMPACT_SUFFIX
    assert report["tables_equal"]
    print(
        f"compaction gate: {report['before_bytes']} -> "
        f"{report['after_bytes']} bytes ({report['ratio']:.0%}); "
        f"snapshot reopen replayed {report['restore_records']} records"
    )


def main() -> int:  # pragma: no cover - convenience entry
    """Standalone run: durable-publish overhead, replay rate, direct apply.

    ``load`` is the workload into a plain in-memory database; ``+feed``
    the extra cost of appending it all to durable segments; ``replay``
    a replica's cold rebuild (with tuples/sec); ``direct`` an engine
    maintaining the hypergraph in-process across the update stream.
    """
    print(
        f"{'N':>8} {'records':>8} {'load':>10} {'+feed':>9} {'replay':>10}"
        f" {'tuples/s':>10} {'direct':>10}"
    )
    for n_tuples in SIZES:
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp) / "feed"
            started = time.perf_counter()
            feed, db, fd = build_feed(directory, n_tuples)
            durable_seconds = time.perf_counter() - started
            feed.close()

            started = time.perf_counter()
            plain = Database()
            generate_key_conflict_table(plain, "r", n_tuples, CONFLICTS, seed=47)
            rng = random.Random(53)
            for _ in range(UPDATES):
                kind = rng.randrange(3)
                key = rng.randrange(10 * n_tuples)
                if kind == 0:
                    plain.execute(
                        f"INSERT INTO r VALUES ({key}, {rng.randrange(1000)})"
                    )
                elif kind == 1:
                    plain.execute(f"DELETE FROM r WHERE a = {key}")
                else:
                    plain.execute(
                        f"UPDATE r SET b0 = {rng.randrange(1000)} WHERE a = {key}"
                    )
            load_seconds = time.perf_counter() - started

            replica, records, replay_seconds = replay(directory, fd)
            assert (
                replica.graph.as_dict()
                == detect_conflicts(db, [fd]).hypergraph.as_dict()
            )

            started = time.perf_counter()
            direct_db = Database()
            table = generate_key_conflict_table(
                direct_db, "r", n_tuples, CONFLICTS, seed=47
            )
            engine = HippoEngine(direct_db, [table.fd])
            rng = random.Random(53)
            for _ in range(UPDATES):
                kind = rng.randrange(3)
                key = rng.randrange(10 * n_tuples)
                if kind == 0:
                    direct_db.execute(
                        f"INSERT INTO r VALUES ({key}, {rng.randrange(1000)})"
                    )
                elif kind == 1:
                    direct_db.execute(f"DELETE FROM r WHERE a = {key}")
                else:
                    direct_db.execute(
                        f"UPDATE r SET b0 = {rng.randrange(1000)} WHERE a = {key}"
                    )
                engine.refresh()
            direct_seconds = time.perf_counter() - started

            rate = records / replay_seconds if replay_seconds else float("inf")
            overhead = durable_seconds - load_seconds
            print(
                f"{n_tuples:>8} {records:>8} {load_seconds * 1e3:>8.1f}ms"
                f" {overhead * 1e3:>7.1f}ms"
                f" {replay_seconds * 1e3:>8.1f}ms {rate:>10.0f}"
                f" {direct_seconds * 1e3:>8.1f}ms"
            )

    # The bounded-memory gate, reported standalone as well: bootstrap
    # over a many-segment history must stay O(segment), not O(history).
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "feed"
        _db, fd = build_gate_history(directory)
        report = bounded_bootstrap(directory, fd)
        print(
            f"bootstrap memory: {report['sealed_segments']} sealed segments,"
            f" peak resident {report['peak_resident']} records"
            f" (cap {2 * GATE_SEGMENT_RECORDS}),"
            f" tracemalloc peak {report['traced_peak_kib']:.0f} KiB"
        )

    # The compaction gate: a slow group mid-segment must not pin whole
    # segments of disk, and a checkpointed writer reopens by replaying
    # only the post-checkpoint suffix.
    with tempfile.TemporaryDirectory() as tmp:
        report = run_compaction_gate(Path(tmp) / "feed")
        print(
            f"compaction: {report['before_bytes']} ->"
            f" {report['after_bytes']} bytes"
            f" ({report['ratio']:.0%}, gate < 60%);"
            f" snapshot reopen replayed {report['restore_records']}"
            f" of the {report['suffix_records']}-record suffix"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
