"""DEMO-3d: "the time overhead of our approach is acceptable".

For every tested query the paper also measures raw RDBMS execution; the
claim is that consistent answering costs only a modest factor more.  This
benchmark computes the Hippo/raw ratio directly inside one process and
asserts a generous bound on it (the ratio, not the absolute time, is the
reproducible quantity).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import scaled, single_table
from repro.workloads import full_scan_query, selection_query

N_TUPLES = scaled(4000, 250)
CONFLICTS = 0.05
#: Generous ceiling: the paper claims "acceptable" overhead; we observe
#: ~2-3x on this substrate and fail the benchmark past 10x to catch
#: performance regressions in the pipeline.
MAX_OVERHEAD = 10.0


@pytest.fixture(scope="module")
def setup():
    return single_table(N_TUPLES, CONFLICTS)


def _best_of(callable_, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.benchmark(group="demo3d-overhead")
@pytest.mark.parametrize("workload", ["selection", "scan"])
def test_demo3d_overhead_ratio(benchmark, setup, workload):
    query = (
        selection_query("r") if workload == "selection" else full_scan_query("r")
    ).sql

    benchmark(lambda: setup.hippo.consistent_answers(query))

    raw_seconds = _best_of(lambda: setup.hippo.raw_answers(query))
    hippo_seconds = _best_of(lambda: setup.hippo.consistent_answers(query))
    ratio = hippo_seconds / raw_seconds
    benchmark.extra_info["overhead_vs_raw_sql"] = round(ratio, 2)
    assert ratio < MAX_OVERHEAD, (
        f"Hippo / raw-SQL overhead {ratio:.1f}x exceeds {MAX_OVERHEAD}x:"
        " the 'acceptable overhead' claim regressed"
    )
