"""OPT-2: the certain core short-cut.

The paper: "using an expression selecting a subset of the set of
consistent query answers, we can significantly reduce the number of
tuples that have to be processed by Prover."  Series: core on vs. off.
With 5% conflicts, ~95% of candidates are certain and skip the Prover.
"""

from __future__ import annotations

import pytest

from benchmarks.common import scaled, single_table
from repro.workloads import full_scan_query

N_TUPLES = scaled(3000, 250)
CONFLICTS = 0.05


@pytest.fixture(scope="module", params=[True, False], ids=["core-on", "core-off"])
def setup(request):
    return single_table(N_TUPLES, CONFLICTS, use_core=request.param), request.param


@pytest.mark.benchmark(group="opt2-core")
def test_opt2_core_shortcut(benchmark, setup):
    built, use_core = setup
    query = full_scan_query("r").sql
    answers = benchmark(lambda: built.hippo.consistent_answers(query))
    benchmark.extra_info["use_core"] = use_core
    benchmark.extra_info["candidates"] = answers.stats["candidates"]
    benchmark.extra_info["skipped_by_core"] = answers.stats["skipped_by_core"]
    benchmark.extra_info["prover_checked"] = answers.stats[
        "prover"
    ].candidates_checked
    if use_core:
        # The short-cut must spare the vast majority of candidates.
        assert answers.stats["skipped_by_core"] >= 0.9 * answers.stats["candidates"]
    else:
        assert answers.stats["skipped_by_core"] == 0
