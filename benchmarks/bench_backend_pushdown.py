"""Backend pushdown: native engine vs SQLite on the CQA hot paths.

The paper's rewriting baseline produces plain first-order SQL -- exactly
the workload a pushdown backend exists for.  This suite times the two
pushed shapes at N = 16k (consistent-query answering through the
rewriting baseline, and conflict detection's residual joins) on the
native engine and on the SQLite backend, and **gates correctness at
bench scale**: the backend's consistent answers and conflict edges must
equal the native oracle's exactly before any timing is reported.

Record a full run into ``BENCH_backend_pushdown.json`` (capped history,
see :mod:`benchmarks.common`) with::

    python benchmarks/common.py --record backend_pushdown
"""

from __future__ import annotations

import time

import pytest

from repro import Database
from repro.backends import NativeBackend, SQLiteBackend
from repro.conflicts import detect_conflicts
from repro.rewriting import RewritingEngine
from repro.workloads import generate_key_conflict_table

from benchmarks.common import scaled

N_TUPLES = scaled(16_000, 300)
CONFLICTS = 0.05
TRIALS = 3

#: A rewritable consistent query (selection on the key-FD table).
CQA_SQL = "SELECT a, b0 FROM r WHERE b0 >= 500000"


@pytest.fixture(scope="module")
def setup():
    db = Database()
    table = generate_key_conflict_table(db, "r", N_TUPLES, CONFLICTS, seed=29)
    # The rewriting's NOT EXISTS residue probes r by key; without this
    # index the native baseline is a quadratic scan at 16k tuples.
    db.execute("CREATE INDEX idx_r_key ON r (a)")
    rewriting = RewritingEngine(db, [table.fd])
    sqlite = SQLiteBackend()
    sqlite.attach(db)
    native = NativeBackend()
    native.attach(db)
    yield db, table, rewriting, sqlite, native
    sqlite.close()


def min_of_trials(run):
    best = float("inf")
    for _ in range(TRIALS):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


# ---------------------------------------------------------------- the gates


def test_gate_consistent_answers_match_oracle(setup):
    """SQLite's rewritten-CQA answers equal the native oracle's at 16k."""
    _db, _table, rewriting, sqlite, _native = setup
    pushed = rewriting.consistent_answers(CQA_SQL, backend=sqlite)
    native = rewriting.consistent_answers(CQA_SQL)
    assert pushed.columns == native.columns
    assert pushed.rows == native.rows
    assert len(native.rows) > 0


def test_gate_conflict_edges_match_oracle(setup):
    """SQLite's residual-join edges equal the native oracle's at 16k."""
    db, table, _rewriting, sqlite, _native = setup
    pushed = detect_conflicts(db, [table.fd], backend=sqlite)
    native = detect_conflicts(db, [table.fd])
    assert set(pushed.hypergraph.edges) == set(native.hypergraph.edges)
    assert len(native.hypergraph.edges) > 0


# -------------------------------------------------------------- the timings


@pytest.mark.benchmark(group="pushdown-cqa")
def test_cqa_native(benchmark, setup):
    _db, _table, rewriting, _sqlite, _native = setup
    result = benchmark(lambda: rewriting.consistent_answers(CQA_SQL))
    benchmark.extra_info["rows"] = len(result.rows)


@pytest.mark.benchmark(group="pushdown-cqa")
def test_cqa_sqlite(benchmark, setup):
    _db, _table, rewriting, sqlite, _native = setup
    result = benchmark(
        lambda: rewriting.consistent_answers(CQA_SQL, backend=sqlite)
    )
    benchmark.extra_info["rows"] = len(result.rows)


@pytest.mark.benchmark(group="pushdown-detection")
def test_detection_native(benchmark, setup):
    db, table, _rewriting, _sqlite, _native = setup
    report = benchmark(lambda: detect_conflicts(db, [table.fd]))
    benchmark.extra_info["edges"] = len(report.hypergraph)


@pytest.mark.benchmark(group="pushdown-detection")
def test_detection_sqlite(benchmark, setup):
    db, table, _rewriting, sqlite, _native = setup
    report = benchmark(
        lambda: detect_conflicts(db, [table.fd], backend=sqlite)
    )
    benchmark.extra_info["edges"] = len(report.hypergraph)


def test_report_min_of_trials(setup, capsys):
    """A one-line native-vs-SQLite summary, independent of the plugin."""
    db, table, rewriting, sqlite, _native = setup
    sqlite.sync()  # exclude the first mirror build from the timings
    native_cqa = min_of_trials(lambda: rewriting.consistent_answers(CQA_SQL))
    sqlite_cqa = min_of_trials(
        lambda: rewriting.consistent_answers(CQA_SQL, backend=sqlite)
    )
    native_det = min_of_trials(lambda: detect_conflicts(db, [table.fd]))
    sqlite_det = min_of_trials(
        lambda: detect_conflicts(db, [table.fd], backend=sqlite)
    )
    with capsys.disabled():
        print(
            f"\npushdown @ N={N_TUPLES}: cqa native {native_cqa * 1e3:.1f}ms"
            f" vs sqlite {sqlite_cqa * 1e3:.1f}ms; detection native"
            f" {native_det * 1e3:.1f}ms vs sqlite {sqlite_det * 1e3:.1f}ms"
        )
    assert min(native_cqa, sqlite_cqa, native_det, sqlite_det) > 0
