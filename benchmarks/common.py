"""Shared setup helpers for the benchmark suite.

Every benchmark mirrors an artifact of the paper's demonstration (see
DESIGN.md's experiment index).  Engines are built once per parameter set
-- Conflict Detection runs before query processing in Hippo's data flow,
so detection cost is *not* part of per-query times (it is measured by its
own benchmark in bench_pipeline.py).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import Database, HippoEngine
from repro.rewriting import RewritingEngine
from repro.workloads import (
    generate_join_pair,
    generate_key_conflict_table,
    generate_union_pair,
)


@dataclass
class SingleTableSetup:
    """One generated table plus ready-made engines."""

    db: Database
    hippo: HippoEngine
    rewriting: RewritingEngine
    n_tuples: int
    conflict_fraction: float


def single_table(
    n_tuples: int,
    conflict_fraction: float,
    seed: int = 11,
    membership: str = "provenance",
    use_core: bool = True,
) -> SingleTableSetup:
    """``r(a, b0)`` with a key FD and the requested conflict rate."""
    db = Database()
    table = generate_key_conflict_table(
        db, "r", n_tuples, conflict_fraction, seed=seed
    )
    hippo = HippoEngine(db, [table.fd], membership=membership, use_core=use_core)
    rewriting = RewritingEngine(db, [table.fd])
    return SingleTableSetup(db, hippo, rewriting, n_tuples, conflict_fraction)


@dataclass
class TwoTableSetup:
    """Two generated tables (for SJ / SJU / SJUD workloads)."""

    db: Database
    hippo: HippoEngine
    rewriting: RewritingEngine


def join_tables(n_tuples: int, conflict_fraction: float, seed: int = 13) -> TwoTableSetup:
    db = Database()
    left, right = generate_join_pair(db, "l", "r", n_tuples, conflict_fraction, seed=seed)
    constraints = [left.fd, right.fd]
    return TwoTableSetup(
        db, HippoEngine(db, constraints), RewritingEngine(db, constraints)
    )


def union_tables(n_tuples: int, conflict_fraction: float, seed: int = 17) -> TwoTableSetup:
    db = Database()
    left, right = generate_union_pair(db, "l", "r", n_tuples, conflict_fraction, seed=seed)
    constraints = [left.fd, right.fd]
    return TwoTableSetup(
        db, HippoEngine(db, constraints), RewritingEngine(db, constraints)
    )
