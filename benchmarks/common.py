"""Shared setup helpers for the benchmark suite -- and its smoke runner.

Every benchmark mirrors an artifact of the paper's demonstration (see
DESIGN.md's experiment index).  Engines are built once per parameter set
-- Conflict Detection runs before query processing in Hippo's data flow,
so detection cost is *not* part of per-query times (it is measured by its
own benchmark in bench_pipeline.py).

**Smoke mode.**  ``python benchmarks/common.py --smoke`` runs every
``bench_*.py`` at tiny sizes (each module routes its size constants
through :func:`scaled`, which picks the small value when
``REPRO_BENCH_SMOKE=1``) with timing disabled, and fails on any crash,
on the incremental-vs-full speedup bar being missed, or on blowing the
wall-clock budget.  This is the CI gate that keeps every benchmark
runnable without paying full benchmark time.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # script execution without PYTHONPATH=src
    sys.path.insert(0, str(_SRC))

from repro import Database, HippoEngine  # noqa: E402
from repro.rewriting import RewritingEngine  # noqa: E402
from repro.workloads import (  # noqa: E402
    generate_join_pair,
    generate_key_conflict_table,
    generate_union_pair,
)

#: Whether the suite is running under the CI smoke gate.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def scaled(full, smoke):
    """``full`` normally; ``smoke`` under ``REPRO_BENCH_SMOKE=1``.

    Benchmarks route their size constants through this so the smoke gate
    exercises every scenario at tiny N without a parallel config.
    """
    return smoke if SMOKE else full


@dataclass
class SingleTableSetup:
    """One generated table plus ready-made engines."""

    db: Database
    hippo: HippoEngine
    rewriting: RewritingEngine
    n_tuples: int
    conflict_fraction: float


def single_table(
    n_tuples: int,
    conflict_fraction: float,
    seed: int = 11,
    membership: str = "provenance",
    use_core: bool = True,
) -> SingleTableSetup:
    """``r(a, b0)`` with a key FD and the requested conflict rate."""
    db = Database()
    table = generate_key_conflict_table(
        db, "r", n_tuples, conflict_fraction, seed=seed
    )
    hippo = HippoEngine(db, [table.fd], membership=membership, use_core=use_core)
    rewriting = RewritingEngine(db, [table.fd])
    return SingleTableSetup(db, hippo, rewriting, n_tuples, conflict_fraction)


@dataclass
class TwoTableSetup:
    """Two generated tables (for SJ / SJU / SJUD workloads)."""

    db: Database
    hippo: HippoEngine
    rewriting: RewritingEngine


def join_tables(
    n_tuples: int, conflict_fraction: float, seed: int = 13
) -> TwoTableSetup:
    db = Database()
    left, right = generate_join_pair(
        db, "l", "r", n_tuples, conflict_fraction, seed=seed
    )
    constraints = [left.fd, right.fd]
    return TwoTableSetup(
        db, HippoEngine(db, constraints), RewritingEngine(db, constraints)
    )


def union_tables(
    n_tuples: int, conflict_fraction: float, seed: int = 17
) -> TwoTableSetup:
    db = Database()
    left, right = generate_union_pair(
        db, "l", "r", n_tuples, conflict_fraction, seed=seed
    )
    constraints = [left.fd, right.fd]
    return TwoTableSetup(
        db, HippoEngine(db, constraints), RewritingEngine(db, constraints)
    )


# ---------------------------------------------------------------------------
# Result history (BENCH_<suite>.json at the repo root)
# ---------------------------------------------------------------------------

#: How many runs a suite's result file keeps (oldest dropped first).
HISTORY_KEEP = 3

#: Where BENCH_<suite>.json files live.
RESULTS_DIR = Path(__file__).resolve().parent.parent


def result_path(suite: str) -> Path:
    """The result file for a benchmark suite name (e.g. ``"pipeline"``)."""
    return RESULTS_DIR / f"BENCH_{suite}.json"


def compact_run(run: dict) -> dict:
    """One recorded run, with per-benchmark raw sample arrays stripped.

    pytest-benchmark's JSON carries every raw timing sample under
    ``benchmarks[*].stats.data`` -- thousands of lines per run that the
    summary statistics already describe.  History entries keep only the
    summaries, so a capped history stays a few hundred lines per suite.
    """
    compacted = dict(run)
    benchmarks = []
    for bench in run.get("benchmarks", []):
        bench = dict(bench)
        stats = bench.get("stats")
        if isinstance(stats, dict) and "data" in stats:
            stats = {k: v for k, v in stats.items() if k != "data"}
            bench["stats"] = stats
        benchmarks.append(bench)
    compacted["benchmarks"] = benchmarks
    return compacted


def load_history(path: Path) -> list[dict]:
    """The runs recorded at ``path``, oldest first.

    Tolerates the legacy layout (one bare pytest-benchmark run dict)
    by treating it as a single-entry history.
    """
    import json

    if not path.exists():
        return []
    payload = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(payload, dict) and "history" in payload:
        return list(payload["history"])
    if isinstance(payload, dict):
        return [payload]  # legacy: a single raw run
    return list(payload)


def record_run(path: Path, run: dict, keep: int = HISTORY_KEEP) -> list[dict]:
    """Append ``run`` to the history at ``path``, keeping the last ``keep``.

    Returns the history as written.  Existing legacy single-run files
    are converted (and compacted) on first append.
    """
    import json

    history = [compact_run(entry) for entry in load_history(path)]
    history.append(compact_run(run))
    history = history[-keep:]
    payload = {"keep": keep, "history": history}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return history


def main(argv=None) -> int:
    """The benchmark smoke gate and history recorder (see docstring)."""
    import argparse
    import json
    import subprocess
    import sys
    import tempfile
    import time
    from pathlib import Path

    parser = argparse.ArgumentParser(description="benchmark suite runner")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run every bench_*.py at tiny N with timing disabled",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=60.0,
        help="wall-clock budget in seconds for --smoke (default 60)",
    )
    parser.add_argument(
        "--record",
        metavar="SUITE",
        help=(
            "run benchmarks/bench_<SUITE>.py at full size and append the"
            f" result to BENCH_<SUITE>.json (last {HISTORY_KEEP} runs kept)"
        ),
    )
    args = parser.parse_args(argv)
    if args.record:
        bench_dir = Path(__file__).resolve().parent
        repo_root = bench_dir.parent
        module = bench_dir / f"bench_{args.record}.py"
        if not module.is_file():
            parser.error(f"no such suite: {module.name}")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        with tempfile.TemporaryDirectory() as tmp:
            json_path = Path(tmp) / "run.json"
            status = subprocess.call(
                [
                    sys.executable,
                    "-m",
                    "pytest",
                    str(module),
                    "-q",
                    "-p",
                    "no:cacheprovider",
                    f"--benchmark-json={json_path}",
                ],
                cwd=repo_root,
                env=env,
            )
            if status != 0:
                print(f"bench record: FAIL (pytest exit {status})")
                return status
            run = json.loads(json_path.read_text(encoding="utf-8"))
        history = record_run(result_path(args.record), run)
        print(
            f"bench record: OK ({result_path(args.record).name},"
            f" {len(history)} run(s) kept)"
        )
        return 0
    if not args.smoke:
        parser.error(
            "pass --smoke (or --record SUITE; full runs go through"
            " pytest-benchmark)"
        )

    bench_dir = Path(__file__).resolve().parent
    repo_root = bench_dir.parent
    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    env["PYTHONPATH"] = str(repo_root / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    benches = sorted(bench_dir.glob("bench_*.py"))
    started = time.perf_counter()
    status = subprocess.call(
        [
            sys.executable,
            "-m",
            "pytest",
            *[str(path) for path in benches],
            "-q",
            "-p",
            "no:cacheprovider",
            "--benchmark-disable",
        ],
        cwd=repo_root,
        env=env,
    )
    elapsed = time.perf_counter() - started
    if status != 0:
        print(f"bench smoke: FAIL (pytest exit {status})")
        return status
    if elapsed > args.budget:
        print(
            f"bench smoke: FAIL ({elapsed:.1f}s exceeded the"
            f" {args.budget:.0f}s budget)"
        )
        return 1
    print(f"bench smoke: OK ({elapsed:.1f}s, budget {args.budget:.0f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
