"""Shared setup helpers for the benchmark suite -- and its smoke runner.

Every benchmark mirrors an artifact of the paper's demonstration (see
DESIGN.md's experiment index).  Engines are built once per parameter set
-- Conflict Detection runs before query processing in Hippo's data flow,
so detection cost is *not* part of per-query times (it is measured by its
own benchmark in bench_pipeline.py).

**Smoke mode.**  ``python benchmarks/common.py --smoke`` runs every
``bench_*.py`` at tiny sizes (each module routes its size constants
through :func:`scaled`, which picks the small value when
``REPRO_BENCH_SMOKE=1``) with timing disabled, and fails on any crash,
on the incremental-vs-full speedup bar being missed, or on blowing the
wall-clock budget.  This is the CI gate that keeps every benchmark
runnable without paying full benchmark time.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # script execution without PYTHONPATH=src
    sys.path.insert(0, str(_SRC))

from repro import Database, HippoEngine  # noqa: E402
from repro.rewriting import RewritingEngine  # noqa: E402
from repro.workloads import (  # noqa: E402
    generate_join_pair,
    generate_key_conflict_table,
    generate_union_pair,
)

#: Whether the suite is running under the CI smoke gate.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def scaled(full, smoke):
    """``full`` normally; ``smoke`` under ``REPRO_BENCH_SMOKE=1``.

    Benchmarks route their size constants through this so the smoke gate
    exercises every scenario at tiny N without a parallel config.
    """
    return smoke if SMOKE else full


@dataclass
class SingleTableSetup:
    """One generated table plus ready-made engines."""

    db: Database
    hippo: HippoEngine
    rewriting: RewritingEngine
    n_tuples: int
    conflict_fraction: float


def single_table(
    n_tuples: int,
    conflict_fraction: float,
    seed: int = 11,
    membership: str = "provenance",
    use_core: bool = True,
) -> SingleTableSetup:
    """``r(a, b0)`` with a key FD and the requested conflict rate."""
    db = Database()
    table = generate_key_conflict_table(
        db, "r", n_tuples, conflict_fraction, seed=seed
    )
    hippo = HippoEngine(db, [table.fd], membership=membership, use_core=use_core)
    rewriting = RewritingEngine(db, [table.fd])
    return SingleTableSetup(db, hippo, rewriting, n_tuples, conflict_fraction)


@dataclass
class TwoTableSetup:
    """Two generated tables (for SJ / SJU / SJUD workloads)."""

    db: Database
    hippo: HippoEngine
    rewriting: RewritingEngine


def join_tables(
    n_tuples: int, conflict_fraction: float, seed: int = 13
) -> TwoTableSetup:
    db = Database()
    left, right = generate_join_pair(
        db, "l", "r", n_tuples, conflict_fraction, seed=seed
    )
    constraints = [left.fd, right.fd]
    return TwoTableSetup(
        db, HippoEngine(db, constraints), RewritingEngine(db, constraints)
    )


def union_tables(
    n_tuples: int, conflict_fraction: float, seed: int = 17
) -> TwoTableSetup:
    db = Database()
    left, right = generate_union_pair(
        db, "l", "r", n_tuples, conflict_fraction, seed=seed
    )
    constraints = [left.fd, right.fd]
    return TwoTableSetup(
        db, HippoEngine(db, constraints), RewritingEngine(db, constraints)
    )


def main(argv=None) -> int:
    """The benchmark smoke gate (see module docstring)."""
    import argparse
    import subprocess
    import sys
    import time
    from pathlib import Path

    parser = argparse.ArgumentParser(description="benchmark suite runner")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run every bench_*.py at tiny N with timing disabled",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=60.0,
        help="wall-clock budget in seconds for --smoke (default 60)",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("pass --smoke (full runs go through pytest-benchmark)")

    bench_dir = Path(__file__).resolve().parent
    repo_root = bench_dir.parent
    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    env["PYTHONPATH"] = str(repo_root / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    benches = sorted(bench_dir.glob("bench_*.py"))
    started = time.perf_counter()
    status = subprocess.call(
        [
            sys.executable,
            "-m",
            "pytest",
            *[str(path) for path in benches],
            "-q",
            "-p",
            "no:cacheprovider",
            "--benchmark-disable",
        ],
        cwd=repo_root,
        env=env,
    )
    elapsed = time.perf_counter() - started
    if status != 0:
        print(f"bench smoke: FAIL (pytest exit {status})")
        return status
    if elapsed > args.budget:
        print(
            f"bench smoke: FAIL ({elapsed:.1f}s exceeded the"
            f" {args.budget:.0f}s budget)"
        )
        return 1
    print(f"bench smoke: OK ({elapsed:.1f}s, budget {args.budget:.0f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
