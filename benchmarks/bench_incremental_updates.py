"""Incremental hypergraph maintenance vs. full re-detection under updates.

Hippo's Figure 1 runs Conflict Detection once; this benchmark measures
what keeping that hypergraph *current* costs as the database changes.
For each scenario size and update-batch size it applies a batch of
INSERT/DELETE/UPDATE statements and times

* ``incremental``: :meth:`HippoEngine.refresh` consuming the change log
  (bind one constraint atom to each delta, index-lookup the residual);
* ``full``: complete re-detection over every constraint and tuple.

Both paths are asserted equivalent on every measured iteration.  The
acceptance bar for this reproduction: on the largest scenario,
incremental maintenance of a single-statement update beats full
re-detection by at least 5x (it is typically well beyond that, since
the delta path does O(delta x matching tuples) work).

Run: ``python -m pytest benchmarks/bench_incremental_updates.py -q``
or standalone: ``python benchmarks/bench_incremental_updates.py``.
"""

from __future__ import annotations

import random
import time

import pytest

from repro import Database, HippoEngine
from repro.conflicts import detect_conflicts
from repro.workloads import generate_key_conflict_table

try:
    from benchmarks.common import scaled
except ImportError:  # standalone: python benchmarks/bench_*.py
    from common import scaled

SIZES = scaled([2000, 8000, 32000], [400, 1600])
BATCH_SIZES = scaled([1, 10, 100], [1, 10])
CONFLICTS = 0.05


def _build(n_tuples: int) -> tuple[Database, HippoEngine, object]:
    db = Database()
    table = generate_key_conflict_table(db, "r", n_tuples, CONFLICTS, seed=29)
    engine = HippoEngine(db, [table.fd])
    return db, engine, table.fd


def _apply_batch(db: Database, rng: random.Random, batch: int, n_tuples: int) -> None:
    """A mixed batch of single-row INSERT / DELETE / UPDATE statements."""
    for _ in range(batch):
        kind = rng.randrange(3)
        if kind == 0:
            key = rng.randrange(10 * n_tuples)
            db.execute(f"INSERT INTO r VALUES ({key}, {rng.randrange(1000)})")
        elif kind == 1:
            key = rng.randrange(10 * n_tuples)
            db.execute(f"DELETE FROM r WHERE a = {key}")
        else:
            key = rng.randrange(10 * n_tuples)
            db.execute(
                f"UPDATE r SET b0 = {rng.randrange(1000)} WHERE a = {key}"
            )


@pytest.fixture(scope="module", params=SIZES)
def scenario(request):
    db, engine, fd = _build(request.param)
    return db, engine, fd, request.param


@pytest.mark.benchmark(group="incremental-updates")
@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_incremental_refresh(benchmark, scenario, batch):
    db, engine, fd, n_tuples = scenario
    rng = random.Random(41)

    def run():
        _apply_batch(db, rng, batch, n_tuples)
        engine.refresh()
        return engine.detection

    report = benchmark(run)
    # A batch whose every statement matched zero rows leaves nothing to
    # apply; the report then still describes the previous detection.
    assert report.mode == "incremental" or report.deltas == 0
    benchmark.extra_info["n_tuples"] = n_tuples
    benchmark.extra_info["batch"] = batch
    # Verified fallback: the maintained graph equals full re-detection.
    assert (
        engine.hypergraph.as_dict()
        == detect_conflicts(db, [fd]).hypergraph.as_dict()
    )


@pytest.mark.benchmark(group="incremental-updates")
def test_full_redetection_baseline(benchmark, scenario):
    db, _engine, fd, n_tuples = scenario
    report = benchmark(lambda: detect_conflicts(db, [fd]))
    benchmark.extra_info["n_tuples"] = n_tuples
    benchmark.extra_info["edges"] = len(report.hypergraph)


def test_single_statement_speedup_bar(scenario):
    """The acceptance criterion: >= 5x on single-statement updates."""
    db, engine, fd, n_tuples = scenario
    if n_tuples < max(SIZES):
        pytest.skip("the bar is set on the largest scenario")
    rng = random.Random(43)
    incremental = full = 0.0
    for _ in range(10):
        _apply_batch(db, rng, 1, n_tuples)
        started = time.perf_counter()
        engine.refresh()
        incremental += time.perf_counter() - started
        assert (
            engine.detection.mode == "incremental"
            or engine.detection.deltas == 0
        )
        started = time.perf_counter()
        detect_conflicts(db, [fd])
        full += time.perf_counter() - started
    assert incremental > 0
    speedup = full / incremental
    print(f"\nsingle-statement speedup at N={n_tuples}: {speedup:.1f}x")
    assert speedup >= 5.0, f"incremental only {speedup:.1f}x faster"


def main() -> int:  # pragma: no cover - convenience entry
    """Standalone run: a compact table of medians, no pytest needed."""
    print(f"{'N':>8} {'batch':>6} {'incremental':>14} {'full':>12} {'speedup':>8}")
    for n_tuples in SIZES:
        for batch in BATCH_SIZES:
            db, engine, fd = _build(n_tuples)
            rng = random.Random(41)
            engine.refresh()
            samples_inc: list[float] = []
            samples_full: list[float] = []
            for _ in range(7):
                _apply_batch(db, rng, batch, n_tuples)
                started = time.perf_counter()
                engine.refresh()
                samples_inc.append(time.perf_counter() - started)
                started = time.perf_counter()
                detect_conflicts(db, [fd])
                samples_full.append(time.perf_counter() - started)
            samples_inc.sort()
            samples_full.sort()
            inc = samples_inc[len(samples_inc) // 2]
            ful = samples_full[len(samples_full) // 2]
            print(
                f"{n_tuples:>8} {batch:>6} {inc * 1e3:>12.2f}ms"
                f" {ful * 1e3:>10.2f}ms {ful / inc:>7.1f}x"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
