"""OPT-1: membership checks answered without executing database queries.

The paper: optimizations "allow us to answer the required membership
checks without executing any queries on the database".  Series: the base
system (per-check point queries), the cached variant, and the extended-
envelope/provenance variant.  Alongside time, the benchmark records the
actual number of database queries issued by the Prover -- the provenance
strategy must issue zero for this (monotone, duplicate-free) workload.
"""

from __future__ import annotations

import pytest

from benchmarks.common import scaled, single_table
from repro.workloads import full_scan_query

N_TUPLES = scaled(3000, 250)
CONFLICTS = 0.10

STRATEGIES = ["query", "cached", "provenance"]


@pytest.fixture(scope="module", params=STRATEGIES)
def setup(request):
    # use_core=False so every candidate reaches the Prover: this isolates
    # the membership-strategy effect from the core short-cut (OPT-2).
    return single_table(
        N_TUPLES, CONFLICTS, membership=request.param, use_core=False
    ), request.param


@pytest.mark.benchmark(group="opt1-membership")
def test_opt1_membership_strategy(benchmark, setup):
    built, strategy = setup
    query = full_scan_query("r").sql
    answers = benchmark(lambda: built.hippo.consistent_answers(query))
    membership = answers.stats["membership"]
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["membership_checks"] = membership.checks
    benchmark.extra_info["db_queries"] = membership.db_queries
    benchmark.extra_info["free_answers"] = membership.free_answers
    if strategy == "query":
        assert membership.db_queries == membership.checks > 0
    if strategy == "provenance":
        assert membership.db_queries == 0
